package core

import (
	"reflect"
	"sync"
	"testing"

	"scaf/internal/ir"
)

// fakePeer is an in-process CachePeer backed by maps keyed on the
// queries' describe() strings — the shape of the fleet tier without the
// wire. It records traffic so tests can assert when the peer was (not)
// consulted.
type fakePeer struct {
	mu      sync.Mutex
	alias   map[string]AliasResponse
	modref  map[string]ModRefResponse
	gets    int
	puts    int
	lastAss []string
}

func newFakePeer() *fakePeer {
	return &fakePeer{alias: map[string]AliasResponse{}, modref: map[string]ModRefResponse{}}
}

func (p *fakePeer) GetAlias(q *AliasQuery) (AliasResponse, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gets++
	r, ok := p.alias[q.describe()]
	return r, ok
}

func (p *fakePeer) PutAlias(q *AliasQuery, asserts []string, r AliasResponse) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.puts++
	p.lastAss = asserts
	p.alias[q.describe()] = r
}

func (p *fakePeer) GetModRef(q *ModRefQuery) (ModRefResponse, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gets++
	r, ok := p.modref[q.describe()]
	return r, ok
}

func (p *fakePeer) PutModRef(q *ModRefQuery, asserts []string, r ModRefResponse) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.puts++
	p.lastAss = asserts
	p.modref[q.describe()] = r
}

func specModules() []Module {
	a := Assertion{Module: "spec", Kind: "k", Cost: 7}
	m1 := &fakeModule{name: "spec", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasSpec(NoAlias, "spec", a)
	}}
	m2 := &fakeModule{name: "base", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(PartialAlias, "base")
	}}
	return []Module{m1, m2}
}

// TestCachePeerRemoteHitMatchesLocal is the seam's core property: an
// orchestrator whose SharedCache misses locally but hits the peer returns
// exactly the response a fresh local resolution produces, while doing no
// module work — and the hit is visible in Stats.RemoteHits.
func TestCachePeerRemoteHitMatchesLocal(t *testing.T) {
	peer := newFakePeer()

	// Distinct queries; each instance gets its own structurally-equal
	// copies (fresh pointers, as across processes), while re-asks within
	// one instance reuse the same objects (pointer-keyed local cache).
	mkQueries := func() []*AliasQuery {
		qs := make([]*AliasQuery, 5)
		for i := range qs {
			qs[i] = aqN(int64(i))
		}
		return qs
	}

	// Instance A resolves fresh and publishes through its cache to the peer.
	cacheA := NewSharedCache()
	cacheA.SetPeer(peer)
	oA := NewOrchestrator(Config{Modules: specModules(), Shared: cacheA})
	qsA := mkQueries()
	var want []AliasResponse
	for _, q := range qsA {
		want = append(want, oA.Alias(q))
	}
	if peer.puts != 5 {
		t.Fatalf("peer saw %d puts, want 5", peer.puts)
	}
	if len(peer.lastAss) != 1 {
		t.Fatalf("published assert keys = %v, want exactly the spec assertion", peer.lastAss)
	}

	// Instance B: cold local cache, same peer. Every query must be a
	// remote hit, answer-identical, with zero module consultations.
	cacheB := NewSharedCache()
	cacheB.SetPeer(peer)
	qsB := mkQueries()
	oB := NewOrchestrator(Config{Modules: specModules(), Shared: cacheB})
	for i, q := range qsB {
		got := oB.Alias(q)
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("query %d: remote-hit response %+v != fresh %+v", i, got, want[i])
		}
	}
	if evals := oB.Stats().ModuleEvals; evals != 0 {
		t.Errorf("instance B did %d module evals, want 0 (all remote hits)", evals)
	}
	if rh := oB.Stats().RemoteHits; rh != 5 {
		t.Errorf("RemoteHits = %d, want 5", rh)
	}
	if sh := oB.Stats().SharedHits; sh != 5 {
		t.Errorf("SharedHits = %d, want 5 (remote hits are shared hits)", sh)
	}

	// A remote hit installs locally: re-asking must not touch the peer.
	gets := peer.gets
	oB2 := NewOrchestrator(Config{Modules: specModules(), Shared: cacheB})
	oB2.Alias(qsB[0])
	if peer.gets != gets {
		t.Errorf("re-ask consulted the peer (%d -> %d gets), want local hit", gets, peer.gets)
	}
	if oB2.Stats().RemoteHits != 0 || oB2.Stats().SharedHits != 1 {
		t.Errorf("re-ask stats = %+v, want one local shared hit", oB2.Stats())
	}
}

// staticRevoker revokes a fixed key set.
type staticRevoker map[string]bool

func (r staticRevoker) RevokedAssert(key string) bool { return r[key] }

// TestCachePeerRevokerBlocksRemote: the local Revoker stays authoritative
// over remote entries — a peer answer predicated on a locally-quarantined
// assertion must miss, exactly like a local entry would (the fleet-wide
// guaranteed-miss rule).
func TestCachePeerRevokerBlocksRemote(t *testing.T) {
	peer := newFakePeer()
	cacheA := NewSharedCache()
	cacheA.SetPeer(peer)
	oA := NewOrchestrator(Config{Modules: specModules(), Shared: cacheA})
	oA.Alias(aqN(0))

	assertKey := Assertion{Module: "spec", Kind: "k", Cost: 7}.String()
	cacheB := NewSharedCache()
	cacheB.SetPeer(peer)
	cacheB.SetRevoker(staticRevoker{assertKey: true})
	mods := specModules()
	oB := NewOrchestrator(Config{Modules: mods, Shared: cacheB})
	oB.Alias(aqN(0))
	if oB.Stats().RemoteHits != 0 {
		t.Fatalf("revoked remote entry served: %+v", oB.Stats())
	}
	if oB.Stats().ModuleEvals == 0 {
		t.Fatal("query must resolve fresh when the remote entry is revoked")
	}
}

// TestSetPeerLookupsOff: with lookups disarmed the peer is never
// consulted, but canonical publications still flow to it.
func TestSetPeerLookupsOff(t *testing.T) {
	peer := newFakePeer()
	cache := NewSharedCache()
	cache.SetPeer(peer)
	o := NewOrchestrator(Config{Modules: specModules(), Shared: cache})
	o.SetPeerLookups(false)
	o.Alias(aqN(0))
	if peer.gets != 0 {
		t.Errorf("peer consulted %d times with lookups off, want 0", peer.gets)
	}
	if peer.puts != 1 {
		t.Errorf("peer saw %d puts, want 1 (publication always flows)", peer.puts)
	}
}

// TestCachePeerModRef covers the mod-ref plane of the seam.
func TestCachePeerModRef(t *testing.T) {
	peer := newFakePeer()
	mkMods := func() []Module {
		return []Module{&fakeModule{name: "m", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
			return ModRefSpec(NoModRef, "m", Assertion{Module: "m", Kind: "k", Cost: 3})
		}}}
	}
	q := &ModRefQuery{Loc: MemLoc{Ptr: ir.CI(9), Size: 8}, Rel: Before}

	cacheA := NewSharedCache()
	cacheA.SetPeer(peer)
	oA := NewOrchestrator(Config{Modules: mkMods(), Shared: cacheA})
	want := oA.ModRef(q)

	cacheB := NewSharedCache()
	cacheB.SetPeer(peer)
	oB := NewOrchestrator(Config{Modules: mkMods(), Shared: cacheB})
	got := oB.ModRef(q)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("remote mod-ref %+v != fresh %+v", got, want)
	}
	if oB.Stats().RemoteHits != 1 || oB.Stats().ModuleEvals != 0 {
		t.Errorf("stats = %+v, want exactly one remote hit and no module work", oB.Stats())
	}
}
