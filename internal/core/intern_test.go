package core

import (
	"math/rand"
	"testing"

	"scaf/internal/ir"
	"scaf/internal/lower"
	"scaf/internal/mcgen"
)

// harvestPoints lowers an mcgen program and collects instruction points —
// the raw material real speculation modules build assertions from.
func harvestPoints(tb testing.TB, seed int64) []Point {
	tb.Helper()
	mod, err := lower.Compile("gen", mcgen.New(seed).Program())
	if err != nil {
		tb.Fatalf("seed %d: %v", seed, err)
	}
	var pts []Point
	for _, fn := range mod.Funcs {
		fn.Instrs(func(in *ir.Instr) { pts = append(pts, Point{Instr: in}) })
	}
	if len(pts) < 16 {
		tb.Fatalf("seed %d harvested only %d points", seed, len(pts))
	}
	return pts
}

// genAssertion builds a well-behaved assertion over the harvested points:
// like the real speculation modules, its conflict set is a deterministic
// function of its observable content (module, kind, points, cost), so wire
// identity determines full identity.
func genAssertion(r *rand.Rand, pts []Point) Assertion {
	mods := []string{"ctrl-spec", "value-pred", "pointsto-spec", "separation"}
	kinds := []string{"never-taken-edge", "value-check", "ro-heap", "residue-mask"}
	a := Assertion{
		Module: mods[r.Intn(len(mods))],
		Kind:   kinds[r.Intn(len(kinds))],
		Cost:   []float64{0, 1, 2.5, 40, 1e6}[r.Intn(5)],
	}
	for n := 1 + r.Intn(3); n > 0; n-- {
		a.Points = append(a.Points, pts[r.Intn(len(pts))])
	}
	if a.Kind == "ro-heap" { // conflicts derived from content, not drawn fresh
		a.Conflicts = []Point{a.Points[0]}
	}
	return a
}

// TestInternHandleEqualsStringEqual is the interning property test: over
// mcgen-derived assertion and option sets, two interned assertions carry
// the same handle exactly when their String() wire identities are equal.
// (Handles intern the full key; for well-behaved modules — conflict sets a
// function of observable content — key equality and wire equality
// coincide, which is what makes handle comparison a sound stand-in for
// re-stringification everywhere.)
func TestInternHandleEqualsStringEqual(t *testing.T) {
	pts := harvestPoints(t, 3)
	r := rand.New(rand.NewSource(42))
	it := NewInterner()

	var interned []Assertion
	for i := 0; i < 400; i++ {
		opts := make([]Option, 1+r.Intn(3))
		for oi := range opts {
			for n := r.Intn(3); n > 0; n-- {
				opts[oi].Asserts = append(opts[oi].Asserts, genAssertion(r, pts))
			}
		}
		for _, o := range it.InternOptions(opts) {
			interned = append(interned, o.Asserts...)
		}
	}
	if len(interned) < 200 {
		t.Fatalf("generated only %d assertions", len(interned))
	}
	for i := range interned {
		if interned[i].intern == nil {
			t.Fatalf("assertion %d left the interner without a handle", i)
		}
	}
	same, diff := 0, 0
	for i := 0; i < len(interned); i++ {
		for j := i + 1; j < len(interned); j++ {
			hEq := interned[i].intern == interned[j].intern
			sEq := interned[i].String() == interned[j].String()
			if hEq != sEq {
				t.Fatalf("handle equality %v but String equality %v for\n  %s\n  %s",
					hEq, sEq, interned[i], interned[j])
			}
			if hEq {
				same++
			} else {
				diff++
			}
		}
	}
	if same == 0 || diff == 0 {
		t.Fatalf("degenerate fixture: %d equal pairs, %d distinct pairs", same, diff)
	}
}

// TestInternKeyDistinguishesConflicts documents why handles intern the
// full key, not the wire string: an ill-behaved pair agreeing on String()
// but differing in conflict points must get distinct handles, or merging
// through handle equality would erase a real validation conflict.
func TestInternKeyDistinguishesConflicts(t *testing.T) {
	pts := harvestPoints(t, 4)
	a := Assertion{Module: "m", Kind: "k", Points: pts[:1], Cost: 3}
	b := a
	b.Conflicts = []Point{pts[1]}
	it := NewInterner()
	ia, ib := it.assert(a), it.assert(b)
	if ia.String() != ib.String() {
		t.Fatal("fixture broken: wire identities differ")
	}
	if ia.intern == ib.intern {
		t.Fatal("assertions with different conflict sets share a handle")
	}
	if it.Len() != 2 {
		t.Fatalf("interner holds %d identities, want 2", it.Len())
	}
}

// TestInternOptionsFastPaths pins the no-copy guarantees: assertion-free
// and already-interned option sets pass through options() with the input
// backing array untouched and zero allocation, and re-interning is
// idempotent (same handles, no growth).
func TestInternOptionsFastPaths(t *testing.T) {
	pts := harvestPoints(t, 5)
	it := NewInterner()

	free := []Option{{}, {}}
	if got := it.InternOptions(free); &got[0] != &free[0] {
		t.Error("assertion-free set was copied")
	}
	if allocs := testing.AllocsPerRun(100, func() { it.InternOptions(free) }); !raceEnabled && allocs != 0 {
		t.Errorf("assertion-free intern allocates %.1f/op, want 0", allocs)
	}

	r := rand.New(rand.NewSource(7))
	raw := []Option{{Asserts: []Assertion{genAssertion(r, pts), genAssertion(r, pts)}}}
	once := it.InternOptions(raw)
	if &once[0] == &raw[0] {
		t.Error("un-interned set was not copied")
	}
	if raw[0].Asserts[0].intern != nil {
		t.Error("interning mutated the caller's assertion in place")
	}
	n := it.Len()
	twice := it.InternOptions(once)
	if &twice[0] != &once[0] {
		t.Error("re-interning an interned set copied it")
	}
	if it.Len() != n {
		t.Errorf("idempotent re-intern grew the table: %d -> %d", n, it.Len())
	}
	if allocs := testing.AllocsPerRun(100, func() { it.InternOptions(once) }); !raceEnabled && allocs != 0 {
		t.Errorf("already-interned intern allocates %.1f/op, want 0", allocs)
	}
}
