package core

import (
	"fmt"
	"time"

	"scaf/internal/cfg"
	"scaf/internal/ir"
)

// JoinPolicy selects what the Orchestrator keeps from each response
// (paper Algorithm 2).
type JoinPolicy int

const (
	// JoinCheapest keeps only the locally optimal (cheapest) option.
	JoinCheapest JoinPolicy = iota
	// JoinAll collects every way a query can be resolved, enabling global
	// reasoning by the client.
	JoinAll
)

// BailoutPolicy selects when the Orchestrator stops querying modules
// (paper §3.3).
type BailoutPolicy int

const (
	// BailDefiniteAffordable stops at the first definite result with an
	// affordable option — the paper implementation's greedy search.
	BailDefiniteAffordable BailoutPolicy = iota
	// BailDefiniteFree stops only at definite, validation-free results.
	BailDefiniteFree
	// BailExhaustive always consults every module.
	BailExhaustive
)

// Routing selects how premise queries travel (the collaboration switch;
// see DESIGN.md).
type Routing int

const (
	// RouteCollaborative sends premise queries to every module —
	// composition by collaboration, i.e. SCAF.
	RouteCollaborative Routing = iota
	// RouteIsolated confines premise queries to the originating module's
	// technique group — composition by confluence, the best prior
	// approach the paper compares against (§2.2.1, §5).
	RouteIsolated
)

// Config configures an Orchestrator.
type Config struct {
	// Modules in evaluation order: memory-analysis modules first, then
	// speculation modules by ascending average assertion cost (§3.3).
	Modules []Module
	Join    JoinPolicy
	Bailout BailoutPolicy
	Routing Routing
	// Groups maps module name → technique group for RouteIsolated.
	// Modules without a group are their own group.
	Groups map[string]string
	// MaxDepth bounds premise-query nesting. 0 means 8.
	MaxDepth int
	// StripDesired removes the desired-result parameter from every query
	// before modules see it (the Fig. 10 ablation).
	StripDesired bool
	// Timeout, when positive, stops consulting further modules once a
	// top-level query has run this long — the compilation-time-sensitive
	// bail-out policy of §3.3. The best answer found so far is returned.
	Timeout time.Duration
	// EnableCache memoizes handle() results per proposition. Sound because
	// the program, profiles, and module set are immutable for the
	// orchestrator's lifetime. Resolutions degraded by an enclosing
	// in-flight proposition (conservative premise-cycle breaks) or by
	// having less remaining depth than a fresh resolution would (depth
	// limit hits) are tainted and never published, so cached runs are
	// answer-identical to uncached runs — the per-orchestrator analogue of
	// SharedCache's canonical-entry rule.
	EnableCache bool
	// RecordLatency appends per-top-level-query wall-clock durations to
	// Stats.Latencies (capped at MaxLatencySamples).
	RecordLatency bool
	// Shared, when non-nil, consults and populates a cross-orchestrator
	// memo cache for top-level queries. Unlike EnableCache it is safe for
	// concurrent use and only ever publishes canonical (complete, depth-0)
	// entries, so results stay bit-identical to an uncached run; see
	// SharedCache. All orchestrators attached to one SharedCache must share
	// an identical configuration.
	Shared *SharedCache
	// Tracer, when non-nil, receives per-event resolution traces (see
	// internal/trace for the collector, JSONL schema, and DOT rendering).
	// With a nil Tracer the orchestrator constructs no events and performs
	// no timing calls beyond the existing latency/timeout ones — the hot
	// path pays one pointer test per site.
	Tracer Tracer
	// IsolatePanics converts a panicking module evaluation into a
	// conservative answer (MayAlias / ModRef) instead of crashing the
	// caller: the recover sits at the single consult site, so a panic never
	// unwinds across resolution frames. The panicked resolution and every
	// enclosing in-flight frame are tainted — neither the per-orchestrator
	// memo nor the SharedCache publishes them — so the degraded answer is
	// confined to the one top-level query that hit the panic.
	IsolatePanics bool
	// OnModulePanic, when non-nil and IsolatePanics is set, is invoked with
	// the offending module's name and the recovered panic value after the
	// ModulePanics counter and trace event fire. Callers use it to
	// quarantine the module (see internal/recovery). It runs on the
	// orchestrator's goroutine and must not query the orchestrator.
	OnModulePanic func(module string, recovered any)
	// WrapModules, when non-nil, rewrites the module list at construction
	// time, after all other options have shaped it. This is the seam
	// recovery filters use to interpose on every module without the
	// assembler needing to know concrete module types.
	WrapModules func([]Module) []Module
	// ModuleOrder, when non-empty, rearranges Modules at construction time
	// (before WrapModules sees them) via ReorderModules — the adoption
	// point for a
	// profile-guided schedule. Consult order is visible in answers
	// (Contribs, option provenance), so only verified orders belong here:
	// see OrderProfile and pdg.LearnOrder.
	ModuleOrder []string
	// Interner, when non-nil, is the assertion-identity table module
	// responses are interned through at every consult site, making later
	// String()/key() calls pointer loads. When nil, the orchestrator uses
	// Shared's interner (so handle identity spans every worker attached to
	// one cache) or, failing that, a private one. Sessions that mint many
	// orchestrators without a shared cache should pass one Interner to all
	// of them.
	Interner *Interner
}

// Orchestrator coordinates interactions among modules and between modules
// and the client (paper §3.3, Algorithm 1). It is not safe for concurrent
// use; create one per goroutine.
type Orchestrator struct {
	cfg    Config
	stats  Stats
	tracer Tracer
	intern *Interner
	// actA/actM map in-flight propositions to their entry sequence number
	// (see seq below); presence alone breaks premise cycles.
	actA   map[aliasKey]int64
	actM   map[modrefKey]int64
	groups map[string][]Module
	cacheA map[aliasMemoKey]AliasResponse
	cacheM map[modrefMemoKey]ModRefResponse
	// hslots are the reusable per-depth Handle values (see handleAt).
	hslots []*handle
	// batch/batchDepth track batch-scoped memoization (see batch.go); while
	// a batch is armed, cacheA/cacheM point into the pooled batch tables.
	batch      *batchTab
	batchDepth int
	// start of the in-flight top-level query, for the timeout policy.
	queryStart time.Time
	// timedOut reports whether the in-flight top-level query already
	// counted its timeout, so Stats.Timeouts is at most one per query.
	timedOut bool
	// seq numbers resolution entries; rootSeq is the entry of the in-flight
	// depth-0 resolution. Together they implement cache tainting: a
	// resolution entered at seq s is degraded exactly when a cycle break
	// referenced a proposition entered before s (the cycle leaves s's
	// subtree, so a fresh resolution of s would not hit it) or a depth
	// limit fired (which taints every frame but the root — only the root
	// re-runs at the same depth when resolved fresh).
	seq     int64
	rootSeq int64
	// windowMin is the smallest taint sequence observed during the current
	// innermost resolution window (maxInt64 when none); frames fold their
	// window into the parent's on exit.
	windowMin int64
	// peerLookups arms remote CachePeer consultation on shared-cache
	// misses (publications always flow). Default true; batch loop
	// resolution turns it off so a cold loop pass does not pay one remote
	// round trip per proposition (see SetPeerLookups).
	peerLookups bool
}

const noTaint = int64(^uint64(0) >> 1) // max int64

// NewOrchestrator builds an Orchestrator from cfg.
func NewOrchestrator(cfg Config) *Orchestrator {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 8
	}
	if len(cfg.ModuleOrder) > 0 {
		cfg.Modules = ReorderModules(cfg.Modules, cfg.ModuleOrder)
	}
	if cfg.WrapModules != nil {
		cfg.Modules = cfg.WrapModules(cfg.Modules)
	}
	intern := cfg.Interner
	if intern == nil && cfg.Shared != nil {
		intern = cfg.Shared.Interner()
	}
	if intern == nil {
		intern = NewInterner()
	}
	o := &Orchestrator{
		cfg:         cfg,
		tracer:      cfg.Tracer,
		intern:      intern,
		actA:        map[aliasKey]int64{},
		actM:        map[modrefKey]int64{},
		groups:      map[string][]Module{},
		windowMin:   noTaint,
		peerLookups: true,
	}
	if cfg.EnableCache {
		o.cacheA = map[aliasMemoKey]AliasResponse{}
		o.cacheM = map[modrefMemoKey]ModRefResponse{}
	}
	for _, m := range cfg.Modules {
		g := cfg.Groups[m.Name()]
		if g == "" {
			g = m.Name()
		}
		o.groups[g] = append(o.groups[g], m)
	}
	return o
}

// Stats returns the accumulated counters.
func (o *Orchestrator) Stats() *Stats { return &o.stats }

// Modules returns a copy of the final module schedule — after ModuleOrder
// and WrapModules have shaped it — in consult order.
func (o *Orchestrator) Modules() []Module {
	return append([]Module(nil), o.cfg.Modules...)
}

// SetTracer attaches (or, with nil, detaches) a resolution tracer after
// construction. Useful for factories that mint identically-configured
// orchestrators but want one tracer per worker; must not be called while a
// query is in flight.
func (o *Orchestrator) SetTracer(t Tracer) { o.tracer = t }

// SetTimeout replaces the per-top-level-query time budget after
// construction (0 disables it). Like SetTracer it exists for pools that
// reuse identically-configured orchestrators across requests with
// different deadlines; it must not be called while a query is in flight.
// The timeout only ever cuts a search short — results found before the
// budget expires are unaffected, and incomplete resolutions are never
// published to caches — so varying it between requests cannot corrupt an
// attached SharedCache.
func (o *Orchestrator) SetTimeout(d time.Duration) { o.cfg.Timeout = d }

// SetPeerLookups arms or disarms remote CachePeer lookups on shared-cache
// misses for subsequent queries (publications to the peer always flow).
// Remote lookups trade one peer round trip for a whole resolution — a win
// for isolated queries, a loss inside a batched loop pass where hundreds
// of propositions resolve back-to-back against warm local state. Like
// SetTimeout, it must not be called while a query is in flight. Answers
// are unaffected either way: a remote hit is byte-identical to a fresh
// resolution (see CachePeer).
func (o *Orchestrator) SetPeerLookups(on bool) { o.peerLookups = on }

// aliasKey identifies the PROPOSITION an alias query asks about. The
// desired-result parameter is deliberately excluded: it tunes module
// effort, not meaning, so a premise re-asking an in-flight proposition
// with a different desired result is still a cycle.
type aliasKey struct {
	p1, p2  ir.Value
	s1, s2  int64
	rel     TemporalRelation
	loop    *cfg.Loop
	dt, pdt *cfg.Tree
}

type modrefKey struct {
	i1, i2  *ir.Instr
	locPtr  ir.Value
	locSize int64
	rel     TemporalRelation
	loop    *cfg.Loop
	dt, pdt *cfg.Tree
}

func keyOfAlias(q *AliasQuery) aliasKey {
	return aliasKey{q.L1.Ptr, q.L2.Ptr, q.L1.Size, q.L2.Size, q.Rel, q.Loop, q.DT, q.PDT}
}

func keyOfModRef(q *ModRefQuery) modrefKey {
	return modrefKey{q.I1, q.I2, q.Loc.Ptr, q.Loc.Size, q.Rel, q.Loop, q.DT, q.PDT}
}

// aliasMemoKey / modrefMemoKey extend the proposition keys with everything
// else a resolution depends on, so the per-orchestrator memo (lifetime or
// batch-scoped) only ever serves a result to a query that would have
// resolved identically fresh:
//
//   - ctx: the call context, which context-sensitive modules consult
//     (pointer identity — contexts are rebuilt per premise chain, so
//     distinct pointers never false-hit);
//   - desired: the desired-result parameter, which skips incapable modules
//     (§3.2.2) and therefore changes what a resolution evaluates;
//   - aud: the premise audience under RouteIsolated ("" when the audience
//     is the full ensemble), without which a resolution confined to one
//     technique group could leak to another — observable as Confluence
//     results changing when memoization is enabled.
//
// The in-flight tables and the SharedCache stay on the bare proposition
// keys: re-asking a proposition in any context is still a cycle, and the
// shared cache only admits canonical entries (top-level, full audience,
// desired-free, nil context).
type aliasMemoKey struct {
	aliasKey
	ctx     *CallCtx
	desired DesiredAlias
	aud     string
}

type modrefMemoKey struct {
	modrefKey
	ctx *CallCtx
	aud string
}

// audienceID names the audience a query resolves against: "" for the full
// ensemble, else the originating module's technique group.
func (o *Orchestrator) audienceID(from Module) string {
	if from == nil || o.cfg.Routing == RouteCollaborative {
		return ""
	}
	g := o.cfg.Groups[from.Name()]
	if g == "" {
		g = from.Name()
	}
	return g
}

// Alias resolves a client alias query.
func (o *Orchestrator) Alias(q *AliasQuery) AliasResponse {
	o.stats.TopQueries++
	o.timedOut = false
	if o.cfg.Timeout > 0 {
		o.queryStart = time.Now()
	}
	t := o.tracer
	var start time.Time
	if t != nil || o.cfg.RecordLatency {
		start = time.Now()
	}
	if t != nil {
		t.TraceEvent(TraceEvent{Kind: TraceTopStart, Alias: true, Prop: q.describe()})
	}
	evals0 := o.stats.ModuleEvals
	r := o.handleAlias(q, 0, nil)
	// One reading serves both accounting sinks: the traced Dur and the
	// recorded latency sample of the same query must agree exactly.
	var dur time.Duration
	if t != nil || o.cfg.RecordLatency {
		dur = time.Since(start)
	}
	if o.cfg.RecordLatency {
		o.stats.recordLatency(dur, o.stats.ModuleEvals-evals0)
	}
	if t != nil {
		t.TraceEvent(TraceEvent{Kind: TraceTopEnd, Alias: true, Result: r.Result.String(),
			Cost: MinCost(r.Options), Dur: dur, Contribs: r.Contribs,
			TimedOut: o.timedOut})
	}
	return r
}

// ModRef resolves a client mod-ref query.
func (o *Orchestrator) ModRef(q *ModRefQuery) ModRefResponse {
	o.stats.TopQueries++
	o.timedOut = false
	if o.cfg.Timeout > 0 {
		o.queryStart = time.Now()
	}
	t := o.tracer
	var start time.Time
	if t != nil || o.cfg.RecordLatency {
		start = time.Now()
	}
	if t != nil {
		t.TraceEvent(TraceEvent{Kind: TraceTopStart, Prop: q.describe()})
	}
	evals0 := o.stats.ModuleEvals
	r := o.handleModRef(q, 0, nil)
	var dur time.Duration // single reading; see Alias
	if t != nil || o.cfg.RecordLatency {
		dur = time.Since(start)
	}
	if o.cfg.RecordLatency {
		o.stats.recordLatency(dur, o.stats.ModuleEvals-evals0)
	}
	if t != nil {
		t.TraceEvent(TraceEvent{Kind: TraceTopEnd, Result: r.Result.String(),
			Cost: MinCost(r.Options), Dur: dur, Contribs: r.Contribs,
			TimedOut: o.timedOut})
	}
	return r
}

// checkTimeout reports whether the in-flight query exceeded the budget.
// The first expired check counts the timeout; later checks keep reporting
// true (stopping every still-open search level) without recounting, so one
// timed-out query contributes exactly one to Stats.Timeouts.
func (o *Orchestrator) checkTimeout() bool {
	if o.cfg.Timeout <= 0 || o.queryStart.IsZero() {
		return false
	}
	if o.timedOut {
		return true
	}
	if time.Since(o.queryStart) > o.cfg.Timeout {
		o.timedOut = true
		o.stats.Timeouts++
		if t := o.tracer; t != nil {
			t.TraceEvent(TraceEvent{Kind: TraceTimeout, Dur: time.Since(o.queryStart)})
		}
		return true
	}
	return false
}

// audience returns the modules a query (premise queries carry the
// originating module in from) is evaluated against.
func (o *Orchestrator) audience(from Module) []Module {
	if from == nil || o.cfg.Routing == RouteCollaborative {
		return o.cfg.Modules
	}
	g := o.cfg.Groups[from.Name()]
	if g == "" {
		g = from.Name()
	}
	return o.groups[g]
}

func (o *Orchestrator) bailAlias(r AliasResponse) bool {
	switch o.cfg.Bailout {
	case BailDefiniteFree:
		return r.IsDefinite() && HasFree(r.Options)
	case BailExhaustive:
		return false
	default:
		return r.IsDefinite() && MinCost(r.Options) < Prohibitive
	}
}

func (o *Orchestrator) bailModRef(r ModRefResponse) bool {
	switch o.cfg.Bailout {
	case BailDefiniteFree:
		return r.IsDefinite() && HasFree(r.Options)
	case BailExhaustive:
		return false
	default:
		return r.IsDefinite() && MinCost(r.Options) < Prohibitive
	}
}

func (o *Orchestrator) handleAlias(q *AliasQuery, depth int, from Module) (resp AliasResponse) {
	if depth > o.cfg.MaxDepth {
		o.noteDepthLimit(true, depth, from)
		return MayAliasResponse()
	}
	if depth > 0 {
		o.stats.PremiseQueries++
		if t := o.tracer; t != nil {
			t.TraceEvent(TraceEvent{Kind: TracePremiseStart, Alias: true,
				Prop: q.describe(), Depth: depth, From: moduleName(from)})
			defer func() {
				t.TraceEvent(TraceEvent{Kind: TracePremiseEnd, Alias: true,
					Depth: depth, Result: resp.Result.String()})
			}()
		}
	}
	if o.cfg.StripDesired && q.Desired != AnyAlias {
		cp := *q
		cp.Desired = AnyAlias
		q = &cp
	}
	k := keyOfAlias(q)
	if entry, inFlight := o.actA[k]; inFlight {
		// Break premise cycles conservatively; the answer depends on the
		// in-flight proposition, so taint every frame that started after it.
		o.noteCycleBreak(true, depth, from, entry)
		return MayAliasResponse()
	}
	var mk aliasMemoKey
	if o.cacheA != nil {
		mk = aliasMemoKey{k, q.Ctx, q.Desired, o.audienceID(from)}
		if r, ok := o.cacheA[mk]; ok {
			o.stats.CacheHits++
			if t := o.tracer; t != nil {
				t.TraceEvent(TraceEvent{Kind: TraceCacheHit, Alias: true, Depth: depth})
			}
			return r
		}
	}
	// Shared-cache participation is restricted to canonical resolutions:
	// top-level, and (for alias) the desired-result-free form.
	shared := o.cfg.Shared != nil && depth == 0 && q.Desired == AnyAlias
	if shared {
		if r, ok, remote := o.cfg.Shared.getAlias(k, q, o.peerLookups); ok {
			o.stats.SharedHits++
			if remote {
				o.stats.RemoteHits++
			}
			if t := o.tracer; t != nil {
				t.TraceEvent(TraceEvent{Kind: TraceSharedHit, Alias: true, Depth: depth})
			}
			return r
		}
	}
	o.seq++
	s := o.seq
	if depth == 0 {
		o.rootSeq = s
	}
	savedWindow := o.windowMin
	o.windowMin = noTaint
	o.actA[k] = s
	defer delete(o.actA, k)

	final := MayAliasResponse()
	complete := true
	for _, m := range o.audience(from) {
		if o.checkTimeout() {
			complete = false
			break
		}
		if q.Desired != AnyAlias {
			if caps, ok := m.(AliasCaps); ok && !caps.CanAnswerAlias(q.Desired) {
				continue // desired-result bail-out (§3.2.2)
			}
		}
		o.stats.ModuleEvals++
		t := o.tracer
		var cstart time.Time
		if t != nil {
			cstart = time.Now()
		}
		res := o.consultAlias(m, q, depth)
		// Intern the response's assertions while this goroutine still owns
		// the freshly-built option set; all later identity work — joins,
		// dedup, publication keys, plan attribution — is then pointer-fast.
		res.Options = o.intern.options(res.Options)
		if t != nil {
			t.TraceEvent(TraceEvent{Kind: TraceConsult, Alias: true, Depth: depth,
				Module: m.Name(), Result: res.Result.String(),
				Cost: MinCost(res.Options), Dur: time.Since(cstart)})
		}
		final = o.joinAlias(final, res)
		if o.bailAlias(final) {
			break
		}
	}
	// A cycle break that left this frame's subtree (windowMin < s) means
	// the answer was degraded by an enclosing in-flight proposition; a
	// depth-limit taint (windowMin == rootSeq on a premise frame) means a
	// fresh resolution would have had more depth to work with. Either way
	// the answer may be less precise than a fresh resolution's, so it must
	// not be memoized.
	tainted := o.windowMin < s
	if o.windowMin < savedWindow {
		savedWindow = o.windowMin
	}
	o.windowMin = savedWindow
	if o.cacheA != nil && complete && !tainted {
		o.cacheA[mk] = final
	}
	// Root frames used to be untaintable (cycle breaks and depth limits
	// both bottom out at rootSeq), so gating publication on !tainted here
	// is answer-preserving for them; panic taints (floor 0) are the one
	// source that reaches depth 0, and those must never publish.
	if shared && complete && !tainted {
		o.cfg.Shared.putAlias(k, final)
	}
	return final
}

func (o *Orchestrator) handleModRef(q *ModRefQuery, depth int, from Module) (resp ModRefResponse) {
	if depth > o.cfg.MaxDepth {
		o.noteDepthLimit(false, depth, from)
		return ModRefConservative()
	}
	if depth > 0 {
		o.stats.PremiseQueries++
		if t := o.tracer; t != nil {
			t.TraceEvent(TraceEvent{Kind: TracePremiseStart,
				Prop: q.describe(), Depth: depth, From: moduleName(from)})
			defer func() {
				t.TraceEvent(TraceEvent{Kind: TracePremiseEnd,
					Depth: depth, Result: resp.Result.String()})
			}()
		}
	}
	k := keyOfModRef(q)
	if entry, inFlight := o.actM[k]; inFlight {
		o.noteCycleBreak(false, depth, from, entry)
		return ModRefConservative()
	}
	var mk modrefMemoKey
	if o.cacheM != nil {
		mk = modrefMemoKey{k, q.Ctx, o.audienceID(from)}
		if r, ok := o.cacheM[mk]; ok {
			o.stats.CacheHits++
			if t := o.tracer; t != nil {
				t.TraceEvent(TraceEvent{Kind: TraceCacheHit, Depth: depth})
			}
			return r
		}
	}
	shared := o.cfg.Shared != nil && depth == 0
	if shared {
		if r, ok, remote := o.cfg.Shared.getModRef(k, q, o.peerLookups); ok {
			o.stats.SharedHits++
			if remote {
				o.stats.RemoteHits++
			}
			if t := o.tracer; t != nil {
				t.TraceEvent(TraceEvent{Kind: TraceSharedHit, Depth: depth})
			}
			return r
		}
	}
	o.seq++
	s := o.seq
	if depth == 0 {
		o.rootSeq = s
	}
	savedWindow := o.windowMin
	o.windowMin = noTaint
	o.actM[k] = s
	defer delete(o.actM, k)

	final := ModRefConservative()
	complete := true
	for _, m := range o.audience(from) {
		if o.checkTimeout() {
			complete = false
			break
		}
		o.stats.ModuleEvals++
		t := o.tracer
		var cstart time.Time
		if t != nil {
			cstart = time.Now()
		}
		res := o.consultModRef(m, q, depth)
		res.Options = o.intern.options(res.Options) // see handleAlias
		if t != nil {
			t.TraceEvent(TraceEvent{Kind: TraceConsult, Depth: depth,
				Module: m.Name(), Result: res.Result.String(),
				Cost: MinCost(res.Options), Dur: time.Since(cstart)})
		}
		final = o.joinModRef(final, res)
		if o.bailModRef(final) {
			break
		}
	}
	tainted := o.windowMin < s // see handleAlias
	if o.windowMin < savedWindow {
		savedWindow = o.windowMin
	}
	o.windowMin = savedWindow
	if o.cacheM != nil && complete && !tainted {
		o.cacheM[mk] = final
	}
	if shared && complete && !tainted { // see handleAlias
		o.cfg.Shared.putModRef(k, final)
	}
	return final
}

// consultAlias evaluates one module on an alias query. With
// Config.IsolatePanics set, a panic anywhere under the module's evaluation
// is recovered here — the innermost consult frame — so unwinding never
// crosses a resolution frame, and the module's contribution becomes the
// join-neutral conservative answer.
func (o *Orchestrator) consultAlias(m Module, q *AliasQuery, depth int) (resp AliasResponse) {
	if o.cfg.IsolatePanics {
		defer func() {
			if r := recover(); r != nil {
				o.notePanic(true, depth, m, r)
				resp = MayAliasResponse()
			}
		}()
	}
	return m.Alias(q, o.handleAt(depth, m))
}

// consultModRef is consultAlias for mod-ref queries.
func (o *Orchestrator) consultModRef(m Module, q *ModRefQuery, depth int) (resp ModRefResponse) {
	if o.cfg.IsolatePanics {
		defer func() {
			if r := recover(); r != nil {
				o.notePanic(false, depth, m, r)
				resp = ModRefConservative()
			}
		}()
	}
	return m.ModRef(q, o.handleAt(depth, m))
}

// notePanic records a recovered module panic. The taint floor drops to 0 —
// below every entry seq — so the panicked resolution and every enclosing
// in-flight frame are degraded: none of them is memoized or published, and
// the conservative answer stays confined to the query that hit the panic.
func (o *Orchestrator) notePanic(alias bool, depth int, m Module, recovered any) {
	o.stats.ModulePanics++
	o.windowMin = 0
	if t := o.tracer; t != nil {
		t.TraceEvent(TraceEvent{Kind: TraceModulePanic, Alias: alias, Depth: depth,
			Module: moduleName(m), Prop: fmt.Sprint(recovered)})
	}
	if f := o.cfg.OnModulePanic; f != nil {
		f(moduleName(m), recovered)
	}
}

// noteCycleBreak records a conservative premise-cycle break: the in-flight
// proposition entered at seq entry is being re-asked, so every resolution
// that started after it (frames with entry seq > entry, i.e. the frames
// between the in-flight proposition and this premise) is answering with
// information a fresh resolution would not be constrained by.
func (o *Orchestrator) noteCycleBreak(alias bool, depth int, from Module, entry int64) {
	o.stats.CycleBreaks++
	if entry < o.windowMin {
		o.windowMin = entry
	}
	if t := o.tracer; t != nil {
		t.TraceEvent(TraceEvent{Kind: TraceCycleBreak, Alias: alias,
			Depth: depth, From: moduleName(from)})
	}
}

// noteDepthLimit records a premise rejected at MaxDepth. Only the depth-0
// frame would replay identically when resolved fresh, so the taint floor is
// the root's entry seq: every premise-level frame in flight is tainted.
func (o *Orchestrator) noteDepthLimit(alias bool, depth int, from Module) {
	o.stats.DepthLimits++
	if o.rootSeq < o.windowMin {
		o.windowMin = o.rootSeq
	}
	if t := o.tracer; t != nil {
		t.TraceEvent(TraceEvent{Kind: TraceDepthLimit, Alias: alias,
			Depth: depth, From: moduleName(from)})
	}
}

// handle implements Handle for one module evaluation. The orchestrator
// reuses one slot per depth (handleAt) instead of boxing a fresh value
// into the Handle interface on every consult: module evaluations at one
// depth are strictly sequential on the orchestrator's goroutine, and a
// Handle is only valid for the duration of the evaluation it was passed
// to — modules must not retain it (none does; it would also be wrong
// under the premise-routing rules).
type handle struct {
	o     *Orchestrator
	depth int
	from  Module
}

// handleAt returns the reusable per-depth Handle, rebound to from.
func (o *Orchestrator) handleAt(depth int, from Module) *handle {
	for len(o.hslots) <= depth {
		o.hslots = append(o.hslots, &handle{o: o, depth: len(o.hslots)})
	}
	h := o.hslots[depth]
	h.from = from
	return h
}

func (h *handle) PremiseAlias(q *AliasQuery) AliasResponse {
	return h.o.handleAlias(q, h.depth+1, h.from)
}

func (h *handle) PremiseModRef(q *ModRefQuery) ModRefResponse {
	return h.o.handleModRef(q, h.depth+1, h.from)
}

// joinAlias implements the paper's join (Algorithm 2) for alias results.
func (o *Orchestrator) joinAlias(r1, r2 AliasResponse) AliasResponse {
	// Fast path: options attached to the bottom result are meaningless,
	// so two MayAlias responses join without any set algebra.
	if r1.Result == MayAlias && r2.Result == MayAlias {
		return MayAliasResponse()
	}
	p1, p2 := aliasPrecision(r1.Result), aliasPrecision(r2.Result)
	if p1 > p2 {
		return r1
	}
	if p2 > p1 {
		return r2
	}
	if r1.Result == r2.Result {
		return AliasResponse{
			Result:   r1.Result,
			Options:  o.combineSame(r1.Options, r2.Options),
			Contribs: o.combineContribs(r1, r2),
		}
	}
	// Same precision, different results: NoAlias vs MustAlias (or
	// SubAlias-level disagreements cannot happen: only one such result).
	return o.conflictAlias(r1, r2)
}

// combineSame merges option sets for identical results per join policy.
func (o *Orchestrator) combineSame(s1, s2 []Option) []Option {
	u := UnionOptions(s1, s2)
	if o.cfg.Join == JoinCheapest {
		return CheapestOf(u)
	}
	return u
}

func (o *Orchestrator) combineContribs(r1 AliasResponse, r2 AliasResponse) []string {
	if o.cfg.Join == JoinAll {
		return MergeContribs(r1.Contribs, r2.Contribs)
	}
	// CHEAPEST: attribute to whichever response supplied the kept option.
	if MinCost(r1.Options) <= MinCost(r2.Options) {
		return r1.Contribs
	}
	return r2.Contribs
}

// conflictAlias resolves NoAlias-vs-MustAlias disagreements: a free answer
// is ground truth; between speculative answers the cheaper (more
// confident-per-cost) one wins (paper §3.3: different profiling inputs can
// support different results).
func (o *Orchestrator) conflictAlias(r1, r2 AliasResponse) AliasResponse {
	o.stats.Conflicts++
	f1, f2 := HasFree(r1.Options), HasFree(r2.Options)
	switch {
	case f1 && !f2:
		return r1
	case f2 && !f1:
		return r2
	case MinCost(r1.Options) <= MinCost(r2.Options):
		return r1
	default:
		return r2
	}
}

// joinModRef implements Algorithm 2 for mod-ref results, including the
// Mod × Ref → NoModRef special case: results are upper bounds, so a
// proof of "never reads" combined with a proof of "never writes" yields
// "never accesses", provided the assertion sets do not conflict.
func (o *Orchestrator) joinModRef(r1, r2 ModRefResponse) ModRefResponse {
	if r1.Result == ModRef && r2.Result == ModRef {
		return ModRefConservative()
	}
	p1, p2 := modrefPrecision(r1.Result), modrefPrecision(r2.Result)
	if p1 > p2 {
		return r1
	}
	if p2 > p1 {
		return r2
	}
	if r1.Result == r2.Result {
		return ModRefResponse{
			Result:   r1.Result,
			Options:  o.combineSame(r1.Options, r2.Options),
			Contribs: o.combineContribsMR(r1, r2),
		}
	}
	if (r1.Result == Mod && r2.Result == Ref) || (r1.Result == Ref && r2.Result == Mod) {
		if OptionsConflict(r1.Options, r2.Options) {
			o.stats.Conflicts++
			if MinCost(r1.Options) <= MinCost(r2.Options) {
				return r1
			}
			return r2
		}
		return ModRefResponse{
			Result:   NoModRef,
			Options:  o.postJoin(CrossOptions(r1.Options, r2.Options)),
			Contribs: MergeContribs(r1.Contribs, r2.Contribs),
		}
	}
	// Remaining same-precision disagreement is impossible in this lattice.
	return r1
}

func (o *Orchestrator) postJoin(s []Option) []Option {
	if o.cfg.Join == JoinCheapest {
		return CheapestOf(s)
	}
	return s
}

func (o *Orchestrator) combineContribsMR(r1, r2 ModRefResponse) []string {
	if o.cfg.Join == JoinAll {
		return MergeContribs(r1.Contribs, r2.Contribs)
	}
	if MinCost(r1.Options) <= MinCost(r2.Options) {
		return r1.Contribs
	}
	return r2.Contribs
}
