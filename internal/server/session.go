package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/fleet"
	"scaf/internal/ir"
	"scaf/internal/pdg"
	"scaf/internal/profile"
	"scaf/internal/recovery"
	"scaf/internal/runtime"
	"scaf/internal/trace"
)

// httpError is a structured error carried up to the HTTP layer.
type httpError struct {
	status     int
	detail     ErrorDetail
	retryAfter string // Retry-After header value, when load shedding
}

func errBadRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest,
		detail: ErrorDetail{Code: "bad_request", Message: fmt.Sprintf(format, args...)}}
}

func errNotFound(format string, args ...any) *httpError {
	return &httpError{status: http.StatusNotFound,
		detail: ErrorDetail{Code: "not_found", Message: fmt.Sprintf(format, args...)}}
}

// parseScheme maps a wire scheme name ("caf"|"confluence"|"scaf",
// case-insensitive; empty means scaf) to its scaf.Scheme.
func parseScheme(s string) (scaf.Scheme, *httpError) {
	switch strings.ToLower(s) {
	case "caf":
		return scaf.SchemeCAF, nil
	case "confluence":
		return scaf.SchemeConfluence, nil
	case "scaf", "":
		return scaf.SchemeSCAF, nil
	}
	return 0, errBadRequest("unknown scheme %q (want caf|confluence|scaf)", s)
}

// latReservoir caps the per-session latency sample reservoir reported by
// /metrics. Overflow is counted, not stored.
const latReservoir = 1 << 14

// pooledOrch is one warm orchestrator of a session's per-scheme pool,
// together with its tracer and the counter snapshot taken at its last
// checkin (the delta since then is the work of exactly one request).
type pooledOrch struct {
	o    *core.Orchestrator
	col  *trace.Collector
	last core.Stats
}

// orchPool hands out warm orchestrators for one (session, scheme) pair.
// Orchestrators are not safe for concurrent use, so a checkout confers
// exclusive ownership until checkin. The pool mints lazily; concurrency
// is bounded by the server's admission control, not by the pool.
type orchPool struct {
	mu   sync.Mutex
	free []*pooledOrch
	mint func() *pooledOrch
}

func (p *orchPool) get() *pooledOrch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		po := p.free[n-1]
		p.free = p.free[:n-1]
		return po
	}
	return p.mint()
}

func (p *orchPool) put(po *pooledOrch) {
	p.mu.Lock()
	p.free = append(p.free, po)
	p.mu.Unlock()
}

// session is one loaded, profiled program with a validated speculation
// plan and warm per-scheme orchestrator pools.
type session struct {
	id     string
	name   string
	sys    *scaf.System
	client *pdg.Client
	hot    []*cfg.Loop
	loops  map[string]*cfg.Loop
	instrs map[string]*ir.Instr
	plan   *PlanInfo

	pools map[scaf.Scheme]*orchPool
	// caches indexes the per-scheme SharedCaches for recovery invalidation.
	caches map[scaf.Scheme]*core.SharedCache
	// quarantine accumulates the session's misspeculation state: it is the
	// Revoker of every per-scheme SharedCache and the option filter wrapped
	// around every module, so a violated assertion reported once is never
	// served from and never re-offered anywhere in the session.
	quarantine *recovery.Quarantine
	// epoch counts recovery events (observe reports, module panics). The
	// HTTP layer folds it into coalescing keys so a request arriving after
	// a recovery never joins a computation started before it.
	epoch atomic.Int64

	// fleet is the cross-instance cache tier (nil outside fleet mode);
	// fleetDigest scopes every fleet key and recovery broadcast to
	// sessions holding this exact program (see fleet.go).
	fleet       *fleet.Tier
	fleetDigest string
	// fpMu guards the per-epoch quarantine-fingerprint cache.
	fpMu    sync.Mutex
	fpEpoch int64
	fpVal   string

	// mu guards the cumulative accounting below, folded in at checkin.
	mu         sync.Mutex
	stats      core.Stats
	metrics    *trace.Metrics // nil when tracing is disabled
	latNS      []int64
	latWork    []int64
	latDropped int64
}

// addCounters folds the counter fields of delta into dst (slices and
// LatencyDropped are handled separately by the reservoir).
func addCounters(dst *core.Stats, delta core.Stats) {
	dst.TopQueries += delta.TopQueries
	dst.PremiseQueries += delta.PremiseQueries
	dst.Conflicts += delta.Conflicts
	dst.ModuleEvals += delta.ModuleEvals
	dst.CacheHits += delta.CacheHits
	dst.SharedHits += delta.SharedHits
	dst.RemoteHits += delta.RemoteHits
	dst.Timeouts += delta.Timeouts
	dst.CycleBreaks += delta.CycleBreaks
	dst.DepthLimits += delta.DepthLimits
	dst.ModulePanics += delta.ModulePanics
}

// subCounters returns cur − last over the counter fields.
func subCounters(cur, last core.Stats) core.Stats {
	return core.Stats{
		TopQueries:     cur.TopQueries - last.TopQueries,
		PremiseQueries: cur.PremiseQueries - last.PremiseQueries,
		Conflicts:      cur.Conflicts - last.Conflicts,
		ModuleEvals:    cur.ModuleEvals - last.ModuleEvals,
		CacheHits:      cur.CacheHits - last.CacheHits,
		SharedHits:     cur.SharedHits - last.SharedHits,
		RemoteHits:     cur.RemoteHits - last.RemoteHits,
		Timeouts:       cur.Timeouts - last.Timeouts,
		CycleBreaks:    cur.CycleBreaks - last.CycleBreaks,
		DepthLimits:    cur.DepthLimits - last.DepthLimits,
		ModulePanics:   cur.ModulePanics - last.ModulePanics,
	}
}

// newSession compiles, profiles, plan-validates and warms one session.
// tier, when non-nil, joins the session to the fleet cache (see fleet.go).
func newSession(id string, req *CreateSessionRequest, scfg Config, tier *fleet.Tier) (*session, *httpError) {
	name, src := req.Name, req.Source
	switch {
	case req.Bench != "":
		if src != "" {
			return nil, errBadRequest("bench and source are mutually exclusive")
		}
		var ok bool
		src, ok = bench.Sources[req.Bench]
		if !ok {
			return nil, errNotFound("unknown benchmark %q", req.Bench)
		}
		name = req.Bench
	case src == "":
		return nil, errBadRequest("session needs bench or source")
	}
	if name == "" {
		name = id
	}

	var loadOpts scaf.Options
	if req.HotLoops != nil {
		if req.HotLoops.MinWeightFrac <= 0 || req.HotLoops.MinAvgIters <= 0 {
			return nil, errBadRequest("hot_loops thresholds must be positive")
		}
		loadOpts.HotLoops = &profile.HotLoopParams{
			MinWeightFrac: req.HotLoops.MinWeightFrac,
			MinAvgIters:   req.HotLoops.MinAvgIters,
		}
	}
	sys, err := scaf.Load(name, src, loadOpts)
	if err != nil {
		return nil, &httpError{status: http.StatusUnprocessableEntity,
			detail: ErrorDetail{Code: "load_failed", Message: err.Error()}}
	}

	sess := &session{
		id:     id,
		name:   name,
		sys:    sys,
		client: sys.Client(),
		hot:    sys.HotLoops(),
		loops:  map[string]*cfg.Loop{},
		instrs: map[string]*ir.Instr{},
		pools:  map[scaf.Scheme]*orchPool{},
		caches: map[scaf.Scheme]*core.SharedCache{},

		quarantine: recovery.New(),
	}
	if tier != nil {
		sess.fleet = tier
		salt := ""
		if scfg.Fleet != nil {
			salt = scfg.Fleet.Salt
		}
		sess.fleetDigest = fleetDigest(req, src, salt)
	}
	for _, l := range sess.hot {
		sess.loops[l.Name()] = l
	}
	for _, fn := range sys.Mod.Funcs {
		fn.Instrs(func(in *ir.Instr) { sess.instrs[InstrRef(in)] = in })
	}
	if req.Trace == nil || *req.Trace {
		sess.metrics = trace.NewMetrics()
	}

	// Speculation plan: build the global validation plan over the hot
	// loops and re-run the program with its checks (plus any
	// client-supplied assertions) enforced. A violating plan is rejected —
	// never served.
	var asserts []core.Assertion
	seen := map[string]bool{}
	switch req.Plan {
	case "", "validate":
		plan := &PlanInfo{}
		o := sys.Orchestrator(scaf.SchemeSCAF,
			scaf.WithJoin(core.JoinAll), scaf.WithBailout(core.BailExhaustive))
		for _, l := range sess.hot {
			res := sess.client.ResolveLoop(o, l)
			p := pdg.BuildPlan(res.Queries)
			plan.Free += p.Free
			plan.Covered += p.Covered
			plan.Dropped += p.Dropped
			plan.Unresolved += p.Unresolved
			for _, a := range p.Assertions {
				if !seen[a.String()] {
					seen[a.String()] = true
					asserts = append(asserts, a)
					plan.TotalCost += a.Cost
				}
			}
		}
		plan.Assertions = len(asserts)
		sess.plan = plan
	case "off":
	default:
		return nil, errBadRequest("unknown plan mode %q (want validate|off)", req.Plan)
	}
	for i, wa := range req.Assertions {
		a, err := ResolveAssertion(sys.Mod, wa)
		if err != nil {
			return nil, errBadRequest("assertion %d: %v", i, err)
		}
		asserts = append(asserts, a)
	}
	if len(asserts) > 0 {
		rep, err := sys.Validate(asserts)
		if err != nil {
			return nil, &httpError{status: http.StatusUnprocessableEntity,
				detail: ErrorDetail{Code: "plan_validation_failed", Message: err.Error()}}
		}
		if sess.plan != nil {
			sess.plan.Checks = rep.Checks
		}
		if rep.Failed() {
			he := &httpError{status: http.StatusUnprocessableEntity,
				detail: ErrorDetail{Code: "plan_validation_failed",
					Message: fmt.Sprintf("%d misspeculations over %d runtime checks",
						len(rep.Violations), rep.Checks)}}
			for _, v := range rep.Violations {
				he.detail.Violations = append(he.detail.Violations,
					WireViolation{Assertion: v.Assertion.String(), Detail: v.Detail})
			}
			return nil, he
		}
	}

	// Warm one orchestrator per scheme. Each scheme gets its own
	// SharedCache: cached propositions embed module answers, so a cache
	// must never span schemes. SetTimeout varies per request, which is
	// safe alongside a SharedCache — incomplete resolutions are never
	// published (see core.SharedCache).
	for _, scheme := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF} {
		scheme := scheme
		sc := core.NewSharedCache()
		// Recovery wiring: the quarantine revokes shared-cache entries at
		// lookup time, filters quarantined options at the module boundary,
		// and absorbs module panics (one faulty module degrades coverage,
		// never the daemon).
		sc.SetRevoker(sess.quarantine)
		if sess.fleet != nil {
			// Fleet wiring: top-level local misses consult the remote tier;
			// canonical publications flow to it. The Revoker above stays
			// authoritative over anything the peer returns.
			sc.SetPeer(&fleetPeer{sess: sess, scheme: scheme, tier: sess.fleet})
		}
		sess.caches[scheme] = sc
		opts := []scaf.OrchOption{
			scaf.WithSharedCache(sc), scaf.WithLatency(),
			scaf.WithModuleWrapper(recovery.Wrapper(sess.quarantine)),
			scaf.WithPanicIsolation(sess.onModulePanic),
		}
		if scfg.ExtraModules != nil {
			// Mint per orchestrator (a plain WithExtraModules would freeze
			// one instance across the whole pool).
			mint := scfg.ExtraModules
			opts = append(opts, scaf.OrchOption(func(c *core.Config) {
				c.Modules = append(c.Modules, mint()...)
			}))
		}
		factory := sys.OrchestratorFactory(scheme, opts...)
		traceOn := sess.metrics != nil
		pool := &orchPool{}
		pool.mint = func() *pooledOrch {
			po := &pooledOrch{o: factory()}
			if traceOn {
				po.col = trace.NewCollector()
				po.o.SetTracer(po.col)
			}
			return po
		}
		pool.free = append(pool.free, pool.mint())
		sess.pools[scheme] = pool
	}
	return sess, nil
}

// info snapshots the session description.
func (sess *session) info() SessionInfo {
	si := SessionInfo{ID: sess.id, Name: sess.name, Plan: sess.plan}
	for _, l := range sess.hot {
		si.HotLoops = append(si.HotLoops, LoopInfo{Name: l.Name(), MemOps: len(l.MemOps())})
	}
	return si
}

// checkin folds the orchestrator's work since its last checkin into the
// session's cumulative accounting and returns it to the pool. The
// returned delta is the request's own contribution (the Timeouts field is
// the request's deadline misses).
func (sess *session) checkin(pool *orchPool, po *pooledOrch) core.Stats {
	st := po.o.Stats()
	cur := *st
	delta := subCounters(cur, po.last)

	sess.mu.Lock()
	addCounters(&sess.stats, delta)
	for i, d := range st.Latencies {
		if len(sess.latNS) >= latReservoir {
			sess.latDropped++
			continue
		}
		sess.latNS = append(sess.latNS, int64(d))
		if i < len(st.WorkSamples) {
			sess.latWork = append(sess.latWork, st.WorkSamples[i])
		} else {
			sess.latWork = append(sess.latWork, 0)
		}
	}
	sess.latDropped += st.LatencyDropped
	if sess.metrics != nil && po.col != nil {
		for _, e := range po.col.Events() {
			sess.metrics.Observe(e)
		}
	}
	sess.mu.Unlock()

	// The orchestrator stays warm; its sample buffers do not. Truncating
	// them (and the overflow counter) at each checkin keeps long-lived
	// orchestrators bounded and makes the next delta self-contained.
	st.Latencies = st.Latencies[:0]
	st.WorkSamples = st.WorkSamples[:0]
	st.LatencyDropped = 0
	if po.col != nil {
		po.col.Reset()
	}
	cur.Latencies = nil
	cur.WorkSamples = nil
	cur.LatencyDropped = 0
	po.last = cur
	pool.put(po)
	return delta
}

// armDeadline returns the AnalyzeLoopHook hook re-arming o's per-query
// budget against the absolute deadline (nil for no deadline). Past the
// deadline every remaining query gets a 1ns budget: it bails out to its
// conservative best-so-far answer after the first timeout check instead
// of searching.
func armDeadline(o *core.Orchestrator, deadline time.Time) func() {
	if deadline.IsZero() {
		return nil
	}
	return func() {
		rem := time.Until(deadline)
		if rem <= 0 {
			rem = time.Nanosecond
		}
		o.SetTimeout(rem)
	}
}

// analyzeLoop resolves one loop's PDG under scheme, optionally bounded by
// an absolute deadline, and returns the wire result plus this request's
// stats delta.
func (sess *session) analyzeLoop(scheme scaf.Scheme, l *cfg.Loop, deadline time.Time) (WireLoopResult, core.Stats) {
	pool := sess.pools[scheme]
	po := pool.get()
	// Batched loop resolution would pay one peer RTT per proposition;
	// the whole-loop lookaside (fleet.go) covers this path instead, so
	// per-proposition remote lookups are disarmed. Publications still
	// flow to the tier, and single /query requests keep remote lookups.
	po.o.SetPeerLookups(false)
	res := sess.client.ResolveLoopHook(po.o, l, armDeadline(po.o, deadline))
	po.o.SetPeerLookups(true)
	po.o.SetTimeout(0)
	delta := sess.checkin(pool, po)
	return EncodeLoopResult(res), delta
}

// resolveQuery resolves one dependence query under scheme.
func (sess *session) resolveQuery(scheme scaf.Scheme, l *cfg.Loop, i1, i2 *ir.Instr, rel core.TemporalRelation, deadline time.Time) (WireQuery, core.Stats) {
	pool := sess.pools[scheme]
	po := pool.get()
	if hook := armDeadline(po.o, deadline); hook != nil {
		hook()
	}
	resp := po.o.ModRef(&core.ModRefQuery{
		I1: i1, I2: i2, Rel: rel, Loop: l,
		DT: sess.client.Prog.Dom[l.Fn], PDT: sess.client.Prog.PostDom[l.Fn],
	})
	po.o.SetTimeout(0)
	q := pdg.MaterializeQuery(i1, i2, rel, resp)
	delta := sess.checkin(pool, po)
	return EncodeQuery(&q), delta
}

// onModulePanic is the core.Config.OnModulePanic hook shared by every
// pooled orchestrator. The first panic of a module quarantines it
// session-wide and flushes every scheme's cache: a module shapes cached
// answers through premises without appearing in their assertion sets, so
// per-entry attribution would under-invalidate. Later queries degrade to
// the module-less ensemble instead of re-consulting the faulty module.
func (sess *session) onModulePanic(module string, recovered any) {
	if sess.quarantine.AddModule(module, fmt.Sprintf("panic: %v", recovered)) {
		sess.epoch.Add(1)
		for _, sc := range sess.caches {
			sc.Flush()
		}
		sess.fleetBroadcast(nil, []string{module})
	}
}

// observe applies one misspeculation report from production execution:
// quarantine the violated assertions (and any withdrawn modules),
// invalidate every cached answer predicated on them, and re-resolve the
// invalidated queries under the degraded plan so the caches are warm —
// and every served answer is recovery-consistent — before the response
// is written. Safe to run concurrently with serving traffic.
func (sess *session) observe(req *ObserveRequest) (*ObserveResponse, *httpError) {
	if len(req.Violations) == 0 && len(req.Modules) == 0 {
		return nil, errBadRequest("observe needs violations or modules")
	}
	resp := &ObserveResponse{Session: sess.id}
	keys := make([]string, 0, len(req.Violations))
	seen := map[string]bool{}
	for i, v := range req.Violations {
		if v.Assertion == "" {
			return nil, errBadRequest("violation %d: empty assertion", i)
		}
		if !seen[v.Assertion] {
			seen[v.Assertion] = true
			keys = append(keys, v.Assertion)
		}
		if sess.quarantine.AddAssert(v.Assertion, v.Detail) {
			resp.NewAsserts++
		}
	}
	for i, m := range req.Modules {
		if m == "" {
			return nil, errBadRequest("module %d: empty name", i)
		}
		if sess.quarantine.AddModule(m, "withdrawn via observe") {
			resp.NewModules++
		}
	}
	// New epoch: requests arriving after this report must not coalesce
	// onto computations started before it.
	sess.epoch.Add(1)
	// Replicate before re-resolving or responding: once the client sees
	// this response, every reachable instance has revoked (fleet mode).
	sess.fleetBroadcast(keys, req.Modules)

	if resp.NewModules > 0 {
		// Module withdrawal flushes wholesale (see onModulePanic); the
		// flush also covers anything the reported violations predicated.
		for _, sc := range sess.caches {
			a, m := sc.Flush()
			resp.Flushed += a + m
		}
	} else if len(keys) > 0 {
		for scheme, sc := range sess.caches {
			inv := sc.InvalidateAsserts(keys)
			n := inv.Total()
			if n == 0 {
				continue
			}
			resp.Invalidated += n
			// Re-resolve under the degraded plan: the quarantine filter
			// hides the violated options, so these answers land exactly
			// where a cold run without the misspeculation would put them.
			pool := sess.pools[scheme]
			po := pool.get()
			for _, q := range inv.Alias {
				po.o.Alias(q)
				resp.Reresolved++
			}
			for _, q := range inv.ModRef {
				po.o.ModRef(q)
				resp.Reresolved++
			}
			sess.checkin(pool, po)
		}
	}
	resp.Quarantine = sess.quarantine.Snapshot()
	return resp, nil
}

// execute runs the session's program under the speculative-parallel
// runtime, planning with the requested scheme. The runtime shares the
// session's quarantine — an assertion a real execution disproves is
// withdrawn from every subsequently-served answer — but runs against its
// own fresh shared cache: the execution path plans with JoinAll +
// exhaustive search, and cached propositions embed module answers, so its
// entries must never mix with the serving pools'. Assertions newly
// quarantined by misspeculation invalidate the serving caches' predicated
// entries, exactly as a POST /observe report of the same violations would.
func (sess *session) execute(req *ExecuteRequest) (*ExecuteResponse, *httpError) {
	scheme, he := parseScheme(req.Scheme)
	if he != nil {
		return nil, he
	}
	if req.Workers < 0 || req.Workers > 64 {
		return nil, errBadRequest("workers must be in [0, 64], got %d", req.Workers)
	}
	if req.MinIters < 0 {
		return nil, errBadRequest("min_iters must be >= 0, got %d", req.MinIters)
	}
	before := map[string]bool{}
	for _, k := range sess.quarantine.AssertKeys() {
		before[k] = true
	}
	rep, err := sess.sys.ExecutePlan(scheme, runtime.Config{
		Workers:    req.Workers,
		MinIters:   req.MinIters,
		Quarantine: sess.quarantine,
	})
	if err != nil {
		return nil, &httpError{status: http.StatusUnprocessableEntity,
			detail: ErrorDetail{Code: "execution_failed", Message: err.Error()}}
	}
	resp := &ExecuteResponse{Session: sess.id, Scheme: scheme.String(), Report: EncodeExecReport(rep)}
	var newKeys []string
	for _, k := range rep.QuarantinedAsserts {
		if !before[k] {
			newKeys = append(newKeys, k)
		}
	}
	resp.NewAsserts = len(newKeys)
	if len(newKeys) > 0 {
		sess.epoch.Add(1)
		sess.fleetBroadcast(newKeys, nil)
		for _, sc := range sess.caches {
			resp.Invalidated += sc.InvalidateAsserts(newKeys).Total()
		}
	}
	resp.Quarantine = sess.quarantine.Snapshot()
	return resp, nil
}

// lookupInstr resolves a wire instruction ref, distinguishing malformed
// refs (400) from well-formed refs that name nothing (404).
func (sess *session) lookupInstr(ref string) (*ir.Instr, *httpError) {
	if _, _, err := splitInstrRef(ref); err != nil {
		return nil, errBadRequest("%v", err)
	}
	in, ok := sess.instrs[ref]
	if !ok {
		return nil, errNotFound("no instruction %q in session %s", ref, sess.id)
	}
	return in, nil
}

// metricsSnapshot renders the session's cumulative accounting.
func (sess *session) metricsSnapshot() SessionMetrics {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sm := SessionMetrics{Name: sess.name, Stats: EncodeCounters(&sess.stats)}
	if n := len(sess.latNS); n > 0 {
		ns := append([]int64(nil), sess.latNS...)
		work := append([]int64(nil), sess.latWork...)
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
		var totNS, totWork int64
		for _, v := range ns {
			totNS += v
		}
		for _, v := range work {
			totWork += v
		}
		sm.Latency = &WireLatency{
			Samples: n,
			Dropped: sess.latDropped,
			P50NS:   percentile(ns, 50),
			P90NS:   percentile(ns, 90),
			P99NS:   percentile(ns, 99),
			P50Work: percentile(work, 50),
			P90Work: percentile(work, 90),
			MaxNS:   ns[n-1],
			TotalNS: totNS, TotalWrk: totWork,
		}
	}
	if sess.metrics != nil {
		wt := &WireTraceMetrics{
			TopQueries:     sess.metrics.TopQueries,
			PremiseQueries: sess.metrics.PremiseQueries,
			Consults:       sess.metrics.Consults,
			MaxDepth:       sess.metrics.MaxDepth,
			TopResults:     map[string]int64{},
			PerModule:      map[string]WireModuleMetrics{},
			Reconciles:     sess.metrics.Reconcile(&sess.stats) == nil,
		}
		for k, v := range sess.metrics.TopResults {
			wt.TopResults[k] = v
		}
		for name, mm := range sess.metrics.PerModule {
			wt.PerModule[name] = WireModuleMetrics{
				Consults:      mm.Consults,
				DurNS:         int64(mm.Dur),
				PremisesAsked: mm.PremisesAsked,
			}
		}
		sm.Trace = wt
	}
	if !sess.quarantine.Empty() {
		snap := sess.quarantine.Snapshot()
		sm.Quarantine = &snap
	}
	return sm
}

// percentile returns the p-th percentile of sorted samples
// (nearest-rank).
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
