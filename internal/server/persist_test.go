package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"scaf/internal/fleet"
)

// bootPersistServer boots a persistent fleet-of-one instance over dir.
// Callers own the teardown: drainPersist writes the snapshot, a bare
// ts.Close simulates a crash (no snapshot, journal already durable).
func bootPersistServer(dir string) (*Server, *httptest.Server) {
	srv := New(Config{Fleet: &FleetConfig{Self: "p0", CacheDir: dir}})
	return srv, httptest.NewServer(srv.Handler())
}

func drainPersist(t *testing.T, srv *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerWarmRestartByteIdentical is the tentpole property end to
// end: analyze on a persistent instance, drain (snapshot), boot a new
// instance from the same directory, and the warm instance must serve
// byte-identical results — from the loaded entries, not by recomputing.
func TestServerWarmRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	req := CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}

	srv1, ts1 := bootPersistServer(dir)
	info1 := createSession(t, ts1, req)
	gold := analyzeJSON(t, ts1, info1.ID)
	entriesBefore := srv1.fleet.Local().Len()
	if entriesBefore == 0 {
		t.Fatal("vacuous: analyze published nothing to the shard")
	}
	drainPersist(t, srv1, ts1)

	srv2, ts2 := bootPersistServer(dir)
	defer drainPersist(t, srv2, ts2)
	if got := srv2.fleet.Local().Len(); got != entriesBefore {
		t.Fatalf("warm boot restored %d entries, want %d", got, entriesBefore)
	}
	st := srv2.PersistStats()
	if st == nil || st.Loaded != int64(entriesBefore) || st.Rejected != 0 {
		t.Fatalf("persist stats after clean load: %+v", st)
	}

	// A fresh session on the warm instance (same create body, so same
	// digest and a clean fingerprint on both sides) must be served from
	// the snapshot: same bytes, and the loop lookaside must hit.
	hits0 := srv2.fleetLoopHits.Load()
	info2 := createSession(t, ts2, req)
	if got := analyzeJSON(t, ts2, info2.ID); !bytes.Equal(got, gold) {
		t.Fatalf("warm analyze diverged from cold gold\ngot  %.300s\nwant %.300s", got, gold)
	}
	if srv2.fleetLoopHits.Load() == hits0 {
		t.Fatal("warm instance recomputed instead of serving the loaded snapshot")
	}

	// The counters are operator-visible.
	_, raw := do(t, ts2, "GET", "/metrics", nil)
	m := decode[MetricsResponse](t, raw)
	if m.Persist == nil || m.Persist.Loaded == 0 {
		t.Fatalf("/metrics does not surface persist counters: %.300s", raw)
	}
}

// TestServerRestartStraddlingObserve restarts across a quarantine: an
// assertion is violated, then the instance drains and a new one boots
// from its directory. The revoked entries must be a physical miss after
// reload — absent from the shard, un-reinsertable — and a fresh session
// must reproduce the clean-slate bytes by fresh computation.
func TestServerRestartStraddlingObserve(t *testing.T) {
	dir := t.TempDir()
	req := CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}

	srv1, ts1 := bootPersistServer(dir)
	info1 := createSession(t, ts1, req)
	gold := analyzeJSON(t, ts1, info1.ID)

	var results []WireLoopResult
	if err := json.Unmarshal(gold, &results); err != nil {
		t.Fatal(err)
	}
	keys := harvestAsserts(AnalyzeResponse{Results: results})
	if len(keys) == 0 {
		t.Fatal("vacuous test: no served answer was predicated on an assertion")
	}
	var vs []WireViolation
	for _, k := range keys {
		vs = append(vs, WireViolation{Assertion: k, Detail: "observed pre-restart"})
	}
	if status, raw := do(t, ts1, "POST", "/sessions/"+info1.ID+"/observe", ObserveRequest{Violations: vs}); status != http.StatusOK {
		t.Fatalf("observe: status %d, body %s", status, raw)
	}
	drainPersist(t, srv1, ts1)

	srv2, ts2 := bootPersistServer(dir)
	defer drainPersist(t, srv2, ts2)
	local := srv2.fleet.Local()

	// Physical-miss proof, three ways: no surviving entry is predicated
	// on a revoked key; the revocations themselves were restored; and the
	// shard refuses to re-admit a predicated entry.
	revoked := make(map[string]bool, len(keys))
	for _, k := range keys {
		revoked[k] = true
	}
	for _, e := range local.SnapshotEntries() {
		for _, a := range e.Asserts {
			if revoked[a] {
				t.Fatalf("entry %q predicated on revoked %q resurrected across restart", e.Key, a)
			}
		}
	}
	if !local.AnyRevoked(keys) {
		t.Fatal("revoked set did not survive the restart")
	}
	if local.Put(fleet.Entry{Key: "d|s|fp|probe", Value: []byte("{}"), Asserts: keys[:1]}) {
		t.Fatal("shard re-admitted an entry predicated on a revoked assertion")
	}

	// Clean-slate semantics: the fresh session's keys equal the
	// pre-violation ones, so if any revoked copy had survived, the
	// lookaside would serve it. It must instead recompute — same bytes,
	// no new loop hits.
	hits0 := srv2.fleetLoopHits.Load()
	info2 := createSession(t, ts2, req)
	if got := analyzeJSON(t, ts2, info2.ID); !bytes.Equal(got, gold) {
		t.Fatalf("post-restart session did not reproduce clean-slate bytes")
	}
	if n := srv2.fleetLoopHits.Load(); n != hits0 {
		t.Fatalf("post-restart session was served a revoked entry (%d -> %d loop hits)", hits0, n)
	}
}

// TestRevokedJournalBlocksResurrection covers the crash window: the
// snapshot on disk predates a quarantine (it still holds the predicated
// entries) and the instance dies without a drain snapshot. The journal
// alone — written synchronously at observe time — must keep the next
// boot from resurrecting the revoked entries.
func TestRevokedJournalBlocksResurrection(t *testing.T) {
	dir := t.TempDir()
	req := CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}

	srv1, ts1 := bootPersistServer(dir)
	info1 := createSession(t, ts1, req)
	gold := analyzeJSON(t, ts1, info1.ID)
	var results []WireLoopResult
	if err := json.Unmarshal(gold, &results); err != nil {
		t.Fatal(err)
	}
	keys := harvestAsserts(AnalyzeResponse{Results: results})
	if len(keys) == 0 {
		t.Fatal("vacuous test: no predicated answers")
	}
	drainPersist(t, srv1, ts1) // snapshot now holds the predicated entries

	// Second life: observe the violations, then crash without a drain.
	_, ts2 := bootPersistServer(dir)
	var vs []WireViolation
	for _, k := range keys {
		vs = append(vs, WireViolation{Assertion: k, Detail: "observed then crashed"})
	}
	info2 := createSession(t, ts2, req)
	if status, raw := do(t, ts2, "POST", "/sessions/"+info2.ID+"/observe", ObserveRequest{Violations: vs}); status != http.StatusOK {
		t.Fatalf("observe: status %d, body %s", status, raw)
	}
	ts2.Close() // no Shutdown: the stale snapshot stays on disk

	// Third life: the stale snapshot still lists the entries, but the
	// journal must block every one of them.
	srv3, ts3 := bootPersistServer(dir)
	defer drainPersist(t, srv3, ts3)
	local := srv3.fleet.Local()
	revoked := make(map[string]bool, len(keys))
	for _, k := range keys {
		revoked[k] = true
	}
	for _, e := range local.SnapshotEntries() {
		for _, a := range e.Asserts {
			if revoked[a] {
				t.Fatalf("stale snapshot resurrected %q past the journal", e.Key)
			}
		}
	}
	if st := srv3.PersistStats(); st.Rejected == 0 {
		t.Fatalf("expected journal-blocked entries to count as rejected: %+v", st)
	}
	hits0 := srv3.fleetLoopHits.Load()
	info3 := createSession(t, ts3, req)
	if got := analyzeJSON(t, ts3, info3.ID); !bytes.Equal(got, gold) {
		t.Fatalf("post-crash session did not reproduce clean-slate bytes")
	}
	if n := srv3.fleetLoopHits.Load(); n != hits0 {
		t.Fatalf("post-crash session served a revoked entry (%d -> %d loop hits)", hits0, n)
	}
}

// TestServerShutdownIdempotent drives Shutdown (and through it
// closeFleet and the final snapshot) from many goroutines at once: no
// panic, and exactly one drain snapshot is written.
func TestServerShutdownIdempotent(t *testing.T) {
	dir := t.TempDir()
	srv, ts := bootPersistServer(dir)
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource})
	analyzeJSON(t, ts, info.ID)
	ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		}()
	}
	wg.Wait()
	if st := srv.PersistStats(); st.Saves != 1 {
		t.Fatalf("drain wrote %d snapshots, want exactly 1", st.Saves)
	}
}

// TestServerPeriodicSnapshot exercises the timer path: with
// SnapshotEvery set, a snapshot appears without any drain, and a crash
// (no Shutdown) still boots warm from it.
func TestServerPeriodicSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv1 := New(Config{Fleet: &FleetConfig{Self: "p0", CacheDir: dir, SnapshotEvery: 5 * time.Millisecond}})
	ts1 := httptest.NewServer(srv1.Handler())
	info := createSession(t, ts1, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})
	gold := analyzeJSON(t, ts1, info.ID)

	// Wait for a periodic snapshot that actually contains the published
	// entries (an early tick can legitimately write an empty one).
	deadline := time.Now().Add(5 * time.Second)
	for srv1.PersistStats().Entries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no non-empty periodic snapshot within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close() // crash: no drain snapshot

	srv2, ts2 := bootPersistServer(dir)
	defer drainPersist(t, srv2, ts2)
	if srv2.PersistStats().Loaded == 0 {
		t.Fatal("periodic snapshot did not load on the next boot")
	}
	info2 := createSession(t, ts2, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})
	if got := analyzeJSON(t, ts2, info2.ID); !bytes.Equal(got, gold) {
		t.Fatalf("warm boot from periodic snapshot diverged")
	}
	// The abandoned first server still holds its goroutine; shut it down
	// so the test leaves nothing running.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv1.Shutdown(ctx)
}

// TestRouterPersistJournal proves a restarted router keeps its rejoin
// power: the session journal and session map survive Close, and the new
// router can still replay the full mutation history into an empty
// backend and serve the same bytes.
func TestRouterPersistJournal(t *testing.T) {
	dir := t.TempDir()
	req := CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}

	bsrv1, bts1 := newTestServer(t, Config{})
	rt1 := NewRouter(RouterConfig{Backends: map[string]string{"b0": bts1.URL}, CacheDir: dir})
	rts1 := httptest.NewServer(rt1.Handler())
	info := createSession(t, rts1, req)
	gold := analyzeJSON(t, rts1, info.ID)
	rts1.Close()
	rt1.Close()
	rt1.Close() // double Close: must be a no-op
	_ = bsrv1

	// The old backend dies with the router; the restarted router fronts a
	// brand-new empty backend and must rebuild it from the loaded journal.
	bts1.Close()
	_, bts2 := newTestServer(t, Config{})
	rt2 := NewRouter(RouterConfig{Backends: map[string]string{"b0": bts2.URL}, CacheDir: dir})
	defer rt2.Close()
	rts2 := httptest.NewServer(rt2.Handler())
	defer rts2.Close()

	rt2.markDown("b0")
	rt2.Probe() // rejoin: replays the persisted journal into the empty backend

	status, raw := do(t, rts2, "GET", "/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: %d %s", status, raw)
	}
	m := decode[RouterMetrics](t, raw)
	if m.Router.Sessions != 1 || m.Router.Rejoins != 1 || len(m.Router.Down) != 0 {
		t.Fatalf("restarted router did not rejoin from the persisted journal: %+v", m.Router)
	}
	if got := analyzeJSON(t, rts2, info.ID); !bytes.Equal(got, gold) {
		t.Fatalf("replayed backend serves different bytes than the original fleet")
	}
}

// TestRouterCloseConcurrent hammers Close from several goroutines while
// requests are in flight — the regression test for idempotent teardown.
func TestRouterCloseConcurrent(t *testing.T) {
	_, bts := newTestServer(t, Config{})
	rt := NewRouter(RouterConfig{Backends: map[string]string{"b0": bts.URL}, Probe: time.Millisecond, CacheDir: t.TempDir()})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			do(t, rts, "GET", "/healthz", nil)
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Close()
		}()
	}
	wg.Wait()
}
