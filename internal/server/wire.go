package server

import (
	"fmt"
	"strconv"
	"strings"

	"scaf/internal/core"
	"scaf/internal/fleet"
	"scaf/internal/ir"
	"scaf/internal/pdg"
	"scaf/internal/persist"
	"scaf/internal/recovery"
	"scaf/internal/runtime"
)

// This file defines the HTTP wire schema: stable JSON forms of requests
// and of pdg/core results. Responses are encoded through the same
// functions the equivalence suite applies to library results, so "HTTP
// answers are bit-identical to scaf.AnalyzeWith" is checked at the level
// of serialized bytes, not a lossy summary.

// InstrRef is the stable wire name of an instruction: "func#id".
// Instruction IDs are unique within their function and stable across
// passes, so the pair identifies an instruction for the session's
// lifetime.
func InstrRef(in *ir.Instr) string {
	return fmt.Sprintf("%s#%d", in.Blk.Fn.Name, in.ID)
}

// WireOption is one assertion option of a response.
type WireOption struct {
	Cost    float64  `json:"cost"`
	Asserts []string `json:"asserts,omitempty"`
}

// WireQuery is one resolved dependence query.
type WireQuery struct {
	I1       string       `json:"i1"`
	I2       string       `json:"i2"`
	Rel      string       `json:"rel"`
	Result   string       `json:"result"`
	NoDep    bool         `json:"nodep"`
	Cost     float64      `json:"cost,omitempty"`
	Options  []WireOption `json:"options,omitempty"`
	Contribs []string     `json:"contribs,omitempty"`
}

// WireLoopResult is the PDG of one loop in wire form.
type WireLoopResult struct {
	Loop     string      `json:"loop"`
	NoDepPct float64     `json:"nodep_pct"`
	Queries  []WireQuery `json:"queries"`
}

// EncodeQuery converts one pdg.Query to its wire form.
func EncodeQuery(q *pdg.Query) WireQuery {
	w := WireQuery{
		I1:       InstrRef(q.I1),
		I2:       InstrRef(q.I2),
		Rel:      q.Rel.String(),
		Result:   q.Resp.Result.String(),
		NoDep:    q.NoDep,
		Cost:     q.Cost,
		Contribs: q.Resp.Contribs,
	}
	for _, o := range q.Resp.Options {
		wo := WireOption{Cost: o.Cost()}
		for _, a := range o.Asserts {
			wo.Asserts = append(wo.Asserts, a.String())
		}
		w.Options = append(w.Options, wo)
	}
	return w
}

// EncodeLoopResult converts one pdg.LoopResult to its wire form.
func EncodeLoopResult(r *pdg.LoopResult) WireLoopResult {
	w := WireLoopResult{
		Loop:     r.Loop.Name(),
		NoDepPct: r.NoDepPct(),
		Queries:  make([]WireQuery, 0, len(r.Queries)),
	}
	for i := range r.Queries {
		w.Queries = append(w.Queries, EncodeQuery(&r.Queries[i]))
	}
	return w
}

// ParseRel parses a wire temporal relation (case-insensitive).
func ParseRel(s string) (core.TemporalRelation, error) {
	switch strings.ToLower(s) {
	case "same", "":
		return core.Same, nil
	case "before":
		return core.Before, nil
	case "after":
		return core.After, nil
	}
	return core.Same, fmt.Errorf("unknown temporal relation %q (want same|before|after)", s)
}

// WirePoint addresses a program point for client-supplied assertions.
// Exactly one of Global, Block (with Fn), or Instr (with Fn) identifies
// the point; EdgeTo with Block names a CFG edge.
type WirePoint struct {
	Fn     string `json:"fn,omitempty"`
	Block  string `json:"block,omitempty"`
	EdgeTo string `json:"edge_to,omitempty"`
	Instr  *int   `json:"instr,omitempty"`
	Global string `json:"global,omitempty"`
}

// WireAssertion is a client-supplied speculative assertion, validated on
// session load along with the framework's own plan.
type WireAssertion struct {
	Module string      `json:"module"`
	Kind   string      `json:"kind,omitempty"`
	Points []WirePoint `json:"points"`
	Cost   float64     `json:"cost,omitempty"`
}

func findBlock(fn *ir.Func, name string) *ir.Block {
	for _, b := range fn.Blocks {
		if b.String() == name || b.Name == name {
			return b
		}
	}
	return nil
}

// ResolvePoint resolves a wire point against a compiled module.
func ResolvePoint(mod *ir.Module, p WirePoint) (core.Point, error) {
	switch {
	case p.Global != "":
		g := mod.GlobalNamed(p.Global)
		if g == nil {
			return core.Point{}, fmt.Errorf("unknown global %q", p.Global)
		}
		return core.Point{G: g}, nil
	case p.Fn != "":
		fn := mod.FuncNamed(p.Fn)
		if fn == nil {
			return core.Point{}, fmt.Errorf("unknown function %q", p.Fn)
		}
		if p.Instr != nil {
			var found *ir.Instr
			fn.Instrs(func(in *ir.Instr) {
				if in.ID == *p.Instr {
					found = in
				}
			})
			if found == nil {
				return core.Point{}, fmt.Errorf("no instruction #%d in %q", *p.Instr, p.Fn)
			}
			return core.Point{Instr: found}, nil
		}
		if p.Block != "" {
			b := findBlock(fn, p.Block)
			if b == nil {
				return core.Point{}, fmt.Errorf("no block %q in %q", p.Block, p.Fn)
			}
			pt := core.Point{Block: b}
			if p.EdgeTo != "" {
				to := findBlock(fn, p.EdgeTo)
				if to == nil {
					return core.Point{}, fmt.Errorf("no block %q in %q", p.EdgeTo, p.Fn)
				}
				pt.EdgeTo = to
			}
			return pt, nil
		}
	}
	return core.Point{}, fmt.Errorf("point needs a global, or a function with a block or instruction")
}

// ResolveAssertion resolves a wire assertion against a compiled module.
func ResolveAssertion(mod *ir.Module, wa WireAssertion) (core.Assertion, error) {
	a := core.Assertion{Module: wa.Module, Kind: wa.Kind, Cost: wa.Cost}
	if a.Module == "" {
		return a, fmt.Errorf("assertion needs a module name")
	}
	for i, wp := range wa.Points {
		p, err := ResolvePoint(mod, wp)
		if err != nil {
			return a, fmt.Errorf("point %d: %w", i, err)
		}
		a.Points = append(a.Points, p)
	}
	return a, nil
}

// CreateSessionRequest loads one program as a session. Either Bench names
// an embedded benchmark, or Name+Source carry MC source directly.
type CreateSessionRequest struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
	Bench  string `json:"bench,omitempty"`
	// Plan selects speculation-plan handling on load: "validate" (the
	// default) builds the global validation plan over the hot loops
	// (JoinAll + exhaustive bail-out, as the planner requires) and re-runs
	// the program with the plan's runtime checks enforced, rejecting the
	// session on any misspeculation; "off" skips plan construction.
	Plan string `json:"plan,omitempty"`
	// Assertions are additional client-supplied speculative assertions
	// validated on load together with the plan. A violating assertion
	// rejects the whole session with a structured error.
	Assertions []WireAssertion `json:"assertions,omitempty"`
	// Trace, when explicitly false, disables per-session trace metrics.
	Trace *bool `json:"trace,omitempty"`
	// HotLoops overrides the paper's hot-loop thresholds for this session
	// (both fields are required together). The differential-testing oracle
	// uses this to analyze the small loops of generated programs through
	// the HTTP path with the same hot set as the library path.
	HotLoops *WireHotLoopParams `json:"hot_loops,omitempty"`
}

// WireHotLoopParams carries hot-loop threshold overrides on the wire.
type WireHotLoopParams struct {
	MinWeightFrac float64 `json:"min_weight_frac"`
	MinAvgIters   float64 `json:"min_avg_iters"`
}

// PlanInfo summarizes the session's validated speculation plan.
type PlanInfo struct {
	Assertions int     `json:"assertions"`
	TotalCost  float64 `json:"total_cost"`
	Free       int     `json:"free"`
	Covered    int     `json:"covered"`
	Dropped    int     `json:"dropped"`
	Unresolved int     `json:"unresolved"`
	// Checks counts the runtime checks executed by the validation re-run
	// (0 when the plan needed no assertions).
	Checks int64 `json:"checks"`
}

// LoopInfo describes one hot loop of a session.
type LoopInfo struct {
	Name   string `json:"name"`
	MemOps int    `json:"mem_ops"`
}

// SessionInfo describes one loaded session.
type SessionInfo struct {
	ID       string     `json:"id"`
	Name     string     `json:"name"`
	HotLoops []LoopInfo `json:"hot_loops"`
	Plan     *PlanInfo  `json:"plan,omitempty"`
}

// AnalyzeRequest asks for the PDGs of a batch of hot loops under one
// scheme. An empty Loops list means every hot loop.
type AnalyzeRequest struct {
	Scheme string   `json:"scheme"`
	Loops  []string `json:"loops,omitempty"`
	// DeadlineMS bounds the whole request: once the deadline passes, each
	// remaining dependence query is given an (expired) budget and bails
	// out to its conservative best-so-far answer instead of searching.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// AnalyzeResponse carries the batch results.
type AnalyzeResponse struct {
	Session string           `json:"session"`
	Scheme  string           `json:"scheme"`
	Results []WireLoopResult `json:"results"`
	// DeadlineMisses counts top-level queries cut short by the deadline.
	DeadlineMisses int64 `json:"deadline_misses,omitempty"`
	// CoalesceHits counts loops served by coalescing onto another
	// in-flight identical computation.
	CoalesceHits int64 `json:"coalesce_hits,omitempty"`
}

// QueryRequest asks one dependence query: may instruction I1 access the
// footprint of I2 under the temporal relation within the loop?
type QueryRequest struct {
	Scheme     string `json:"scheme"`
	Loop       string `json:"loop"`
	I1         string `json:"i1"`
	I2         string `json:"i2"`
	Rel        string `json:"rel,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// QueryResponse carries one resolved query.
type QueryResponse struct {
	Session      string    `json:"session"`
	Scheme       string    `json:"scheme"`
	Query        WireQuery `json:"query"`
	Coalesced    bool      `json:"coalesced,omitempty"`
	DeadlineMiss bool      `json:"deadline_miss,omitempty"`
}

// WireViolation is one misspeculation found while validating a plan, or
// reported by a client's recovery code via POST /sessions/{id}/observe
// (the wire shape of validate.Report's violations in both directions).
type WireViolation struct {
	Assertion string `json:"assertion"`
	Detail    string `json:"detail"`
}

// ObserveRequest reports production-execution observations against a
// session: assertions the real input disproved, and modules to withdraw
// wholesale. Quarantining is monotonic — repeated reports of the same
// assertion count as flakiness, not state changes.
type ObserveRequest struct {
	// Violations lists disproven assertions by their wire identity (the
	// `assertion` strings served in query options and plan-validation
	// errors).
	Violations []WireViolation `json:"violations,omitempty"`
	// Modules withdraws whole modules: every cached answer is flushed and
	// the module is never consulted again in this session.
	Modules []string `json:"modules,omitempty"`
}

// ObserveResponse summarizes one recovery pass.
type ObserveResponse struct {
	Session string `json:"session"`
	// NewAsserts / NewModules count newly-quarantined entries (repeats are
	// visible in Quarantine.Repeats).
	NewAsserts int `json:"new_asserts"`
	NewModules int `json:"new_modules"`
	// Invalidated counts cache entries removed because they were
	// predicated on a reported assertion (summed over schemes).
	Invalidated int `json:"invalidated"`
	// Reresolved counts invalidated queries re-resolved under the degraded
	// plan before this response was sent.
	Reresolved int `json:"reresolved"`
	// Flushed counts cache entries dropped by module-level quarantine
	// (module attribution is not entry-exact, so module withdrawal flushes).
	Flushed int `json:"flushed,omitempty"`
	// Quarantine is the session's post-observation quarantine state.
	Quarantine recovery.Snapshot `json:"quarantine"`
}

// ErrorDetail is the structured error body of every non-2xx response.
type ErrorDetail struct {
	Code       string          `json:"code"`
	Message    string          `json:"message"`
	Violations []WireViolation `json:"violations,omitempty"`
}

// ErrorResponse wraps ErrorDetail.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// WireCounters mirrors core.Stats' counters on the wire.
type WireCounters struct {
	TopQueries     int64 `json:"top_queries"`
	PremiseQueries int64 `json:"premise_queries"`
	ModuleEvals    int64 `json:"module_evals"`
	Conflicts      int64 `json:"conflicts"`
	CacheHits      int64 `json:"cache_hits"`
	SharedHits     int64 `json:"shared_hits"`
	// RemoteHits is the subset of SharedHits served by the fleet's
	// cross-instance cache tier (always 0 outside fleet mode).
	RemoteHits   int64 `json:"remote_hits"`
	Timeouts     int64 `json:"timeouts"`
	CycleBreaks  int64 `json:"cycle_breaks"`
	DepthLimits  int64 `json:"depth_limits"`
	ModulePanics int64 `json:"module_panics"`
}

// EncodeCounters converts core.Stats counters to wire form.
func EncodeCounters(st *core.Stats) WireCounters {
	if st == nil {
		return WireCounters{}
	}
	return WireCounters{
		TopQueries:     st.TopQueries,
		PremiseQueries: st.PremiseQueries,
		ModuleEvals:    st.ModuleEvals,
		Conflicts:      st.Conflicts,
		CacheHits:      st.CacheHits,
		SharedHits:     st.SharedHits,
		RemoteHits:     st.RemoteHits,
		Timeouts:       st.Timeouts,
		CycleBreaks:    st.CycleBreaks,
		DepthLimits:    st.DepthLimits,
		ModulePanics:   st.ModulePanics,
	}
}

// WireLatency summarizes per-query latency samples: wall-clock
// percentiles plus the deterministic work measure (module evals).
type WireLatency struct {
	Samples  int   `json:"samples"`
	Dropped  int64 `json:"dropped,omitempty"`
	P50NS    int64 `json:"p50_ns"`
	P90NS    int64 `json:"p90_ns"`
	P99NS    int64 `json:"p99_ns"`
	P50Work  int64 `json:"p50_work_evals"`
	P90Work  int64 `json:"p90_work_evals"`
	MaxNS    int64 `json:"max_ns"`
	TotalNS  int64 `json:"total_ns"`
	TotalWrk int64 `json:"total_work_evals"`
}

// WireModuleMetrics is one module's consult aggregate from the trace.
type WireModuleMetrics struct {
	Consults      int64 `json:"consults"`
	DurNS         int64 `json:"dur_ns"`
	PremisesAsked int64 `json:"premises_asked"`
}

// WireTraceMetrics is the trace-derived aggregate of a session.
type WireTraceMetrics struct {
	TopQueries     int64                        `json:"top_queries"`
	PremiseQueries int64                        `json:"premise_queries"`
	Consults       int64                        `json:"consults"`
	MaxDepth       int                          `json:"max_depth"`
	TopResults     map[string]int64             `json:"top_results,omitempty"`
	PerModule      map[string]WireModuleMetrics `json:"per_module,omitempty"`
	// Reconciles reports whether the trace aggregate matches the
	// orchestration counters exactly (the Tracer-contract guarantee).
	Reconciles bool `json:"reconciles"`
}

// SessionMetrics is one session's entry in the /metrics report.
type SessionMetrics struct {
	Name    string            `json:"name"`
	Stats   WireCounters      `json:"stats"`
	Latency *WireLatency      `json:"latency,omitempty"`
	Trace   *WireTraceMetrics `json:"trace,omitempty"`
	// Quarantine is present once the session has quarantined anything.
	Quarantine *recovery.Snapshot `json:"quarantine,omitempty"`
}

// ServerCounters are the server-level counters of the /metrics report.
type ServerCounters struct {
	Accepted       int64 `json:"accepted"`
	Rejected       int64 `json:"rejected"`
	QueueDepth     int64 `json:"queue_depth"`
	InFlight       int64 `json:"in_flight"`
	CoalesceHits   int64 `json:"coalesce_hits"`
	DeadlineMisses int64 `json:"deadline_misses"`
	QueriesServed  int64 `json:"queries_served"`
	LoopsServed    int64 `json:"loops_served"`
	// ServerPanics counts HTTP handlers that panicked and were converted
	// into 500 responses by the recovery middleware.
	ServerPanics int64 `json:"server_panics"`
	// Observations counts POST /observe recovery passes served.
	Observations int64 `json:"observations"`
	// Executions counts POST /execute speculative runs served.
	Executions int64 `json:"executions"`
	// FleetLoopHits counts /analyze loops served whole from the fleet's
	// cross-instance lookaside (always 0 outside fleet mode).
	FleetLoopHits int64 `json:"fleet_loop_hits,omitempty"`
	Sessions      int   `json:"sessions"`
	Draining      bool  `json:"draining"`
}

// MetricsResponse is the /metrics body.
type MetricsResponse struct {
	Server   ServerCounters            `json:"server"`
	Sessions map[string]SessionMetrics `json:"sessions"`
	// Fleet is the instance's cache-tier counters (fleet mode only).
	Fleet *fleet.TierStats `json:"fleet,omitempty"`
	// Persist is the durable tier's counters (persistent instances only).
	Persist *persist.Stats `json:"persist,omitempty"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
}

// splitInstrRef splits "func#id" into its parts.
func splitInstrRef(ref string) (fn string, id int, err error) {
	i := strings.LastIndexByte(ref, '#')
	if i <= 0 || i == len(ref)-1 {
		return "", 0, fmt.Errorf("malformed instruction ref %q (want func#id)", ref)
	}
	id, err = strconv.Atoi(ref[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("malformed instruction ref %q: %v", ref, err)
	}
	return ref[:i], id, nil
}

// ExecuteRequest asks the daemon to run the session's program under the
// speculative-parallel runtime, driven by the plan the chosen scheme
// produces for the session's hot loops.
type ExecuteRequest struct {
	// Scheme is "caf" | "confluence" | "scaf" (default scaf).
	Scheme string `json:"scheme,omitempty"`
	// Workers sizes the speculative chunking (default 4, capped at 64).
	Workers int `json:"workers,omitempty"`
	// MinIters is the smallest trip count worth speculating (default
	// 2×Workers).
	MinIters int64 `json:"min_iters,omitempty"`
}

// WireExecLoop mirrors runtime.LoopStats on the wire.
type WireExecLoop struct {
	Loop            string `json:"loop"`
	Refusal         string `json:"refusal,omitempty"`
	Invocations     int64  `json:"invocations"`
	SpecInvocations int64  `json:"spec_invocations"`
	Chunks          int64  `json:"chunks"`
	CommittedChunks int64  `json:"committed_chunks"`
	AbortedChunks   int64  `json:"aborted_chunks"`
	SpecIters       int64  `json:"spec_iters"`
	SerialIters     int64  `json:"serial_iters"`
	Misspecs        int64  `json:"misspecs"`
}

// WireExecReport mirrors runtime.Report on the wire, with the program's
// observable output included (the library form excludes it from JSON so
// deterministic counter gates can marshal reports directly).
type WireExecReport struct {
	Output             []string       `json:"output"`
	Steps              int64          `json:"steps"`
	MemDigest          uint64         `json:"mem_digest"`
	Loops              []WireExecLoop `json:"loops,omitempty"`
	DoallLoops         int            `json:"doall_loops"`
	RefusedLoops       int            `json:"refused_loops"`
	SpecInvocations    int64          `json:"spec_invocations"`
	Chunks             int64          `json:"chunks"`
	CommittedChunks    int64          `json:"committed_chunks"`
	AbortedChunks      int64          `json:"aborted_chunks"`
	SpecIters          int64          `json:"spec_iters"`
	SerialIters        int64          `json:"serial_iters"`
	Misspecs           int64          `json:"misspecs"`
	ReplanRounds       int64          `json:"replan_rounds"`
	QuarantinedAsserts []string       `json:"quarantined_asserts,omitempty"`
	WallNanos          int64          `json:"wall_nanos"`
}

// EncodeExecReport converts a runtime report to wire form.
func EncodeExecReport(r *runtime.Report) WireExecReport {
	w := WireExecReport{
		Output:             r.Output,
		Steps:              r.Steps,
		MemDigest:          r.MemDigest,
		DoallLoops:         r.DoallLoops,
		RefusedLoops:       r.RefusedLoops,
		SpecInvocations:    r.SpecInvocations,
		Chunks:             r.Chunks,
		CommittedChunks:    r.CommittedChunks,
		AbortedChunks:      r.AbortedChunks,
		SpecIters:          r.SpecIters,
		SerialIters:        r.SerialIters,
		Misspecs:           r.Misspecs,
		ReplanRounds:       r.ReplanRounds,
		QuarantinedAsserts: r.QuarantinedAsserts,
		WallNanos:          r.WallNanos,
	}
	for _, ls := range r.Loops {
		w.Loops = append(w.Loops, WireExecLoop{
			Loop:            ls.Loop,
			Refusal:         ls.Refusal,
			Invocations:     ls.Invocations,
			SpecInvocations: ls.SpecInvocations,
			Chunks:          ls.Chunks,
			CommittedChunks: ls.CommittedChunks,
			AbortedChunks:   ls.AbortedChunks,
			SpecIters:       ls.SpecIters,
			SerialIters:     ls.SerialIters,
			Misspecs:        ls.Misspecs,
		})
	}
	return w
}

// ExecuteResponse is the /execute body. A misspeculating execution is a
// 200 — recovery is part of the contract; the report says what happened.
type ExecuteResponse struct {
	Session string         `json:"session"`
	Scheme  string         `json:"scheme"`
	Report  WireExecReport `json:"report"`
	// NewAsserts counts assertions the execution disproved and
	// quarantined; Invalidated counts the session's analysis-cache entries
	// dropped because they were predicated on them (summed over schemes).
	NewAsserts  int `json:"new_asserts"`
	Invalidated int `json:"invalidated"`
	// Quarantine is the session's post-execution quarantine state.
	Quarantine recovery.Snapshot `json:"quarantine"`
}
