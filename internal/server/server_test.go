package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"scaf"
	"scaf/internal/interp"
	"scaf/internal/profile"
	"scaf/internal/spec"
)

// smallSource is a tiny MC program with one hot loop: the inner loop
// reads a[] and writes b[], so cross-iteration queries have real
// dependence structure without compress-scale query counts.
const smallSource = `
int a[64];
int b[64];

int main() {
  int t = 0;
  for (int r = 0; r < 40; r = r + 1) {
    for (int i = 0; i < 64; i = i + 1) {
      b[i] = a[i] + 1;
      t = t + b[i];
    }
  }
  return t;
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// do issues one JSON request and returns status + body.
func do(t *testing.T, ts *httptest.Server, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

func decode[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decoding %T from %s: %v", v, raw, err)
	}
	return v
}

func createSession(t *testing.T, ts *httptest.Server, req CreateSessionRequest) SessionInfo {
	t.Helper()
	status, raw := do(t, ts, "POST", "/sessions", req)
	if status != http.StatusCreated {
		t.Fatalf("create session: status %d, body %s", status, raw)
	}
	return decode[SessionInfo](t, raw)
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource})
	if info.ID == "" || info.Name != "small" {
		t.Fatalf("unexpected session info: %+v", info)
	}
	if len(info.HotLoops) == 0 {
		t.Fatalf("expected hot loops, got none: %+v", info)
	}
	if info.Plan == nil {
		t.Fatalf("default plan mode should report a plan: %+v", info)
	}

	status, raw := do(t, ts, "GET", "/sessions", nil)
	if status != http.StatusOK {
		t.Fatalf("list sessions: status %d", status)
	}
	if list := decode[[]SessionInfo](t, raw); len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("list = %+v, want exactly %s", list, info.ID)
	}

	status, raw = do(t, ts, "GET", "/sessions/"+info.ID, nil)
	if status != http.StatusOK {
		t.Fatalf("get session: status %d, body %s", status, raw)
	}

	if status, _ = do(t, ts, "DELETE", "/sessions/"+info.ID, nil); status != http.StatusNoContent {
		t.Fatalf("delete session: status %d", status)
	}
	status, raw = do(t, ts, "GET", "/sessions/"+info.ID, nil)
	if status != http.StatusNotFound {
		t.Fatalf("get deleted session: status %d, body %s", status, raw)
	}
	if e := decode[ErrorResponse](t, raw); e.Error.Code != "not_found" {
		t.Fatalf("error code = %q, want not_found", e.Error.Code)
	}
}

func TestCreateSessionErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"empty", CreateSessionRequest{}, http.StatusBadRequest, "bad_request"},
		{"unknown bench", CreateSessionRequest{Bench: "999.nope"}, http.StatusNotFound, "not_found"},
		{"bench and source", CreateSessionRequest{Bench: "129.compress", Source: smallSource},
			http.StatusBadRequest, "bad_request"},
		{"bad syntax", CreateSessionRequest{Name: "x", Source: "int main( {"},
			http.StatusUnprocessableEntity, "load_failed"},
		{"bad plan mode", CreateSessionRequest{Name: "x", Source: smallSource, Plan: "maybe"},
			http.StatusBadRequest, "bad_request"},
		{"unknown json field", map[string]any{"sourcecode": smallSource},
			http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		status, raw := do(t, ts, "POST", "/sessions", tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, status, tc.status, raw)
			continue
		}
		if e := decode[ErrorResponse](t, raw); e.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, e.Error.Code, tc.code)
		}
	}
	if status, _ := do(t, ts, "GET", "/sessions", nil); status != http.StatusOK {
		t.Fatalf("list after failed creates: status %d", status)
	}
}

// TestSessionRejectsViolatingPlan is the end-to-end validation gate: a
// client-supplied control-speculation assertion claiming an edge is
// never taken, when profiling shows it is, must reject the whole
// session with a structured 422 — the daemon never serves answers
// predicated on a plan that failed validation.
func TestSessionRejectsViolatingPlan(t *testing.T) {
	sys, err := scaf.Load("small", smallSource, scaf.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// Find an edge the training run actually takes.
	var taken *profile.EdgeKey
	for k, n := range sys.Profiles.Edge.EdgeCount {
		if n > 0 && k.From.Fn.Name == "main" {
			k := k
			taken = &k
			break
		}
	}
	if taken == nil {
		t.Fatal("no taken edge in profile")
	}

	_, ts := newTestServer(t, Config{})
	status, raw := do(t, ts, "POST", "/sessions", CreateSessionRequest{
		Name:   "small",
		Source: smallSource,
		Assertions: []WireAssertion{{
			Module: spec.NameControlSpec,
			Kind:   "never-taken-edge",
			Points: []WirePoint{{
				Fn:     "main",
				Block:  taken.From.String(),
				EdgeTo: taken.To.String(),
			}},
			Cost: 1,
		}},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (body %s)", status, raw)
	}
	e := decode[ErrorResponse](t, raw)
	if e.Error.Code != "plan_validation_failed" {
		t.Fatalf("code %q, want plan_validation_failed", e.Error.Code)
	}
	if len(e.Error.Violations) == 0 {
		t.Fatalf("expected structured violations, got none: %s", raw)
	}
	if v := e.Error.Violations[0]; v.Assertion == "" || v.Detail == "" {
		t.Fatalf("violation lacks detail: %+v", v)
	}

	// The rejected session must not be registered.
	if _, raw := do(t, ts, "GET", "/sessions", nil); len(decode[[]SessionInfo](t, raw)) != 0 {
		t.Fatalf("rejected session leaked into the registry: %s", raw)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})

	if status, _ := do(t, ts, "POST", "/sessions/nope/analyze", AnalyzeRequest{}); status != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", status)
	}
	if status, _ := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
		AnalyzeRequest{Scheme: "magic"}); status != http.StatusBadRequest {
		t.Errorf("unknown scheme: status %d, want 400", status)
	}
	if status, _ := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
		AnalyzeRequest{Loops: []string{"main/nope.0"}}); status != http.StatusNotFound {
		t.Errorf("unknown loop: status %d, want 404", status)
	}
	if status, _ := do(t, ts, "POST", "/sessions/"+info.ID+"/query",
		QueryRequest{Loop: info.HotLoops[0].Name, I1: "bogus", I2: "bogus"}); status != http.StatusBadRequest {
		t.Errorf("malformed query target: status %d, want 400", status)
	}
	if status, _ := do(t, ts, "POST", "/sessions/"+info.ID+"/query",
		QueryRequest{Loop: info.HotLoops[0].Name, I1: "main#99999", I2: "main#99999"}); status != http.StatusNotFound {
		t.Errorf("missing query target: status %d, want 404", status)
	}
}

func TestAdmissionControl(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})

	// Occupy the only worker slot and fill the queue.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()
	srv.queued.Add(1)
	defer srv.queued.Add(-1)

	req, err := http.NewRequest("POST", ts.URL+"/sessions/"+info.ID+"/analyze",
		bytes.NewReader([]byte(`{"scheme":"scaf"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if e := decode[ErrorResponse](t, raw); e.Error.Code != "overloaded" {
		t.Fatalf("code %q, want overloaded", e.Error.Code)
	}
	if srv.rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}

	// A caller that gives up while queued gets 503, and its queue slot is
	// reclaimed.
	ctx, cancel := context.WithCancel(context.Background())
	r := httptest.NewRequest("POST", "/x", nil).WithContext(ctx)
	srv.queued.Add(-1) // make room in the queue so admit() blocks
	done := make(chan *httpError, 1)
	go func() {
		release, he := srv.admit(r)
		if release != nil {
			release()
		}
		done <- he
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case he := <-done:
		if he == nil || he.status != http.StatusServiceUnavailable {
			t.Fatalf("queued+canceled admit = %+v, want 503", he)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admit did not observe cancellation")
	}
	srv.queued.Add(1) // restore for the deferred drain
	if got := srv.queued.Load(); got != 1 {
		t.Fatalf("queue depth after cancel = %d, want 1 (the artificial entry)", got)
	}
}

func TestGracefulDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	// Simulate one in-flight request: Shutdown must wait for it.
	if !srv.enter() {
		t.Fatal("enter refused before drain")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned before in-flight request finished")
	}
	cancel()

	// New work is refused while draining.
	status, raw := do(t, ts, "GET", "/healthz", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503 (body %s)", status, raw)
	}
	if e := decode[ErrorResponse](t, raw); e.Error.Code != "draining" {
		t.Fatalf("code %q, want draining", e.Error.Code)
	}

	// Once the last request completes, Shutdown unblocks.
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	srv.exit()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not unblock when in-flight count hit zero")
	}

	// Idempotent once drained.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})

	status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d, body %s", status, raw)
	}
	ar := decode[AnalyzeResponse](t, raw)
	if len(ar.Results) != len(info.HotLoops) {
		t.Fatalf("analyze returned %d results for %d hot loops", len(ar.Results), len(info.HotLoops))
	}

	status, raw = do(t, ts, "GET", "/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	if h := decode[HealthResponse](t, raw); h.Status != "ok" || h.Sessions != 1 {
		t.Fatalf("healthz = %+v", h)
	}

	status, raw = do(t, ts, "GET", "/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	m := decode[MetricsResponse](t, raw)
	if m.Server.Accepted == 0 || m.Server.LoopsServed == 0 {
		t.Fatalf("server counters not advancing: %+v", m.Server)
	}
	if m.Server.InFlight != 1 {
		// The /metrics request itself is the one in flight.
		t.Fatalf("in_flight = %d, want 1", m.Server.InFlight)
	}
	sm, ok := m.Sessions[info.ID]
	if !ok {
		t.Fatalf("no metrics for session %s: %s", info.ID, raw)
	}
	if sm.Stats.TopQueries == 0 || sm.Stats.ModuleEvals == 0 {
		t.Fatalf("session stats empty: %+v", sm.Stats)
	}
	if sm.Latency == nil || sm.Latency.Samples == 0 {
		t.Fatalf("no latency samples: %+v", sm.Latency)
	}
	if int64(sm.Latency.Samples) != sm.Stats.TopQueries {
		t.Fatalf("latency samples %d != top queries %d", sm.Latency.Samples, sm.Stats.TopQueries)
	}
	if sm.Latency.TotalWrk != sm.Stats.ModuleEvals {
		t.Fatalf("work samples total %d != module evals %d — the deterministic "+
			"work measure must partition exactly across queries",
			sm.Latency.TotalWrk, sm.Stats.ModuleEvals)
	}
	if sm.Trace == nil {
		t.Fatal("trace metrics missing with tracing on")
	}
	if !sm.Trace.Reconciles {
		t.Fatalf("trace does not reconcile with stats: %+v vs %+v", sm.Trace, sm.Stats)
	}
	if sm.Trace.TopQueries != sm.Stats.TopQueries {
		t.Fatalf("trace top queries %d != stats %d", sm.Trace.TopQueries, sm.Stats.TopQueries)
	}
}

// TestDeadlineBoundedAnalyze drives the deadline path: an already-expired
// budget must still produce a complete, well-formed (conservative)
// response, count its misses, and leave the session's shared caches
// untouched for later deadline-free callers.
func TestDeadlineBoundedAnalyze(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})

	// Reference answer from a fresh server (deadline-free, cold caches).
	_, ts2 := newTestServer(t, Config{})
	info2 := createSession(t, ts2, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})
	_, wantRaw := do(t, ts2, "POST", "/sessions/"+info2.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
	want := decode[AnalyzeResponse](t, wantRaw)

	status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
		AnalyzeRequest{Scheme: "scaf", DeadlineMS: 1})
	if status != http.StatusOK {
		t.Fatalf("deadline analyze: status %d, body %s", status, raw)
	}
	br := decode[AnalyzeResponse](t, raw)
	if len(br.Results) != len(info.HotLoops) {
		t.Fatalf("deadline analyze returned %d results, want %d", len(br.Results), len(info.HotLoops))
	}
	for _, r := range br.Results {
		if len(r.Queries) == 0 {
			t.Fatalf("deadline-bounded result for %s lost its queries", r.Loop)
		}
	}

	// The same session must now serve the exact deadline-free answer: a
	// degraded resolution must never have been published to the shared
	// cache (core.SharedCache's completeness rule, exercised end to end).
	status, raw = do(t, ts, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
	if status != http.StatusOK {
		t.Fatalf("follow-up analyze: status %d", status)
	}
	got := decode[AnalyzeResponse](t, raw)
	gotJSON, _ := json.Marshal(got.Results)
	wantJSON, _ := json.Marshal(want.Results)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("deadline-free answers diverged after a deadline-bounded request:\ngot  %s\nwant %s",
			gotJSON, wantJSON)
	}
}

func TestPreload(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark load in -short")
	}
	srv := New(Config{})
	info, err := srv.Preload("129.compress")
	if err != nil {
		t.Fatalf("preload: %v", err)
	}
	if info.Name != "129.compress" || len(info.HotLoops) == 0 {
		t.Fatalf("preload info: %+v", info)
	}
	if _, err := srv.Preload("999.nope"); err == nil {
		t.Fatal("preload of unknown benchmark succeeded")
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})
	loop := info.HotLoops[0].Name

	// Get a real query pair from a batch analysis.
	_, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
		AnalyzeRequest{Scheme: "scaf", Loops: []string{loop}})
	ar := decode[AnalyzeResponse](t, raw)
	if len(ar.Results) != 1 || len(ar.Results[0].Queries) == 0 {
		t.Fatalf("no queries to re-ask: %s", raw)
	}
	ref := ar.Results[0].Queries[0]

	status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/query", QueryRequest{
		Scheme: "scaf", Loop: loop, I1: ref.I1, I2: ref.I2, Rel: ref.Rel,
	})
	if status != http.StatusOK {
		t.Fatalf("query: status %d, body %s", status, raw)
	}
	qr := decode[QueryResponse](t, raw)
	refJSON, _ := json.Marshal(ref)
	gotJSON, _ := json.Marshal(qr.Query)
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatalf("single query diverges from its batch twin:\ngot  %s\nwant %s", gotJSON, refJSON)
	}

	// Deadline-bounded single query: must answer (possibly conservatively).
	status, raw = do(t, ts, "POST", "/sessions/"+info.ID+"/query", QueryRequest{
		Scheme: "scaf", Loop: loop, I1: ref.I1, I2: ref.I2, Rel: ref.Rel, DeadlineMS: 1,
	})
	if status != http.StatusOK {
		t.Fatalf("deadline query: status %d, body %s", status, raw)
	}
	if q := decode[QueryResponse](t, raw); q.Query.I1 != ref.I1 || q.Query.I2 != ref.I2 {
		t.Fatalf("deadline query answered the wrong pair: %s", raw)
	}
}

func TestInstrRefRoundTrip(t *testing.T) {
	fn, id, err := splitInstrRef("main#17")
	if err != nil || fn != "main" || id != 17 {
		t.Fatalf("splitInstrRef = %q,%d,%v", fn, id, err)
	}
	for _, bad := range []string{"", "main", "#3", "main#", "main#x", fmt.Sprintf("#%d", 1)} {
		if _, _, err := splitInstrRef(bad); err == nil {
			t.Errorf("splitInstrRef(%q) accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	s := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    int
		want int64
	}{{50, 50}, {90, 90}, {99, 100}, {100, 100}, {1, 10}}
	for _, c := range cases {
		if got := percentile(s, c.p); got != c.want {
			t.Errorf("p%d = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("p50 of empty = %d", got)
	}
	if got := percentile([]int64{7}, 50); got != 7 {
		t.Errorf("p50 of singleton = %d", got)
	}
}

// TestSessionHotLoopOverride: the hot_loops request field widens (or
// narrows) which loops the session analyzes; invalid thresholds are a
// structured 400. The oracle's server-drift check depends on this field to
// align the daemon's loop set with the in-process analysis.
func TestSessionHotLoopOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Default thresholds (weight 0.10, avg iters 50): only the 64-iteration
	// inner loop of smallSource qualifies.
	def := createSession(t, ts, CreateSessionRequest{Name: "def", Source: smallSource})
	if len(def.HotLoops) != 1 {
		t.Fatalf("default hot loops = %d, want 1: %+v", len(def.HotLoops), def.HotLoops)
	}

	// Loosened thresholds pick up the 40-iteration outer loop too.
	loose := createSession(t, ts, CreateSessionRequest{
		Name: "loose", Source: smallSource,
		HotLoops: &WireHotLoopParams{MinWeightFrac: 0.001, MinAvgIters: 1.5},
	})
	if len(loose.HotLoops) <= len(def.HotLoops) {
		t.Fatalf("loose thresholds found %d loops, default %d — override had no effect",
			len(loose.HotLoops), len(def.HotLoops))
	}

	// Impossible thresholds: a valid session with no hot loops.
	none := createSession(t, ts, CreateSessionRequest{
		Name: "none", Source: smallSource,
		HotLoops: &WireHotLoopParams{MinWeightFrac: 0.5, MinAvgIters: 1e9},
	})
	if len(none.HotLoops) != 0 {
		t.Fatalf("impossible thresholds still found loops: %+v", none.HotLoops)
	}

	// Non-positive thresholds are a client error, not a silent default.
	for _, bad := range []WireHotLoopParams{
		{MinWeightFrac: 0, MinAvgIters: 2},
		{MinWeightFrac: 0.01, MinAvgIters: -1},
	} {
		bad := bad
		status, raw := do(t, ts, "POST", "/sessions",
			CreateSessionRequest{Name: "bad", Source: smallSource, HotLoops: &bad})
		if status != http.StatusBadRequest {
			t.Fatalf("thresholds %+v: status %d, want 400 (body %s)", bad, status, raw)
		}
		if e := decode[ErrorResponse](t, raw); e.Error.Code != "bad_request" {
			t.Fatalf("thresholds %+v: code %q, want bad_request", bad, e.Error.Code)
		}
	}
}

// TestExecuteEndpoint: POST /execute runs the session's program under the
// speculative-parallel runtime and the result must match a serial
// interpretation byte-for-byte — output and memory digest — while the
// report shows actual speculation happened on the DOALL loop.
func TestExecuteEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	src := `
int a[64];
void main() {
    for (int i = 0; i < 64; i++) {
        a[i] = i * 7 + 3;
    }
    int s = 0;
    for (int i = 0; i < 64; i++) {
        s = s + a[i];
    }
    print(s);
}
`
	hot := &WireHotLoopParams{MinWeightFrac: 0.001, MinAvgIters: 1.5}
	info := createSession(t, ts, CreateSessionRequest{Name: "exec", Source: src, HotLoops: hot})

	sys, err := scaf.Load("exec", src, scaf.Options{HotLoops: &profile.HotLoopParams{
		MinWeightFrac: hot.MinWeightFrac, MinAvgIters: hot.MinAvgIters}})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := interp.Run(sys.Mod, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/execute", ExecuteRequest{Scheme: "scaf", Workers: 4, MinIters: 2})
	if status != http.StatusOK {
		t.Fatalf("execute: status %d, body %s", status, raw)
	}
	resp := decode[ExecuteResponse](t, raw)
	if fmt.Sprint(resp.Report.Output) != fmt.Sprint(serial.Output) {
		t.Fatalf("output diverged: %v want %v", resp.Report.Output, serial.Output)
	}
	if resp.Report.MemDigest != serial.Mem.Digest() {
		t.Fatalf("memory digest diverged")
	}
	if resp.Report.SpecIters == 0 || resp.Report.DoallLoops == 0 {
		t.Fatalf("nothing was speculated: %+v", resp.Report)
	}
	if resp.Report.Misspecs != 0 || resp.NewAsserts != 0 {
		t.Fatalf("honest plan misspeculated: %+v", resp)
	}

	// Invalid requests are 400s, unknown sessions 404s.
	if status, _ := do(t, ts, "POST", "/sessions/"+info.ID+"/execute", ExecuteRequest{Scheme: "bogus"}); status != http.StatusBadRequest {
		t.Fatalf("bogus scheme: status %d, want 400", status)
	}
	if status, _ := do(t, ts, "POST", "/sessions/"+info.ID+"/execute", ExecuteRequest{Workers: 9999}); status != http.StatusBadRequest {
		t.Fatalf("oversized workers: status %d, want 400", status)
	}
	if status, _ := do(t, ts, "POST", "/sessions/nope/execute", ExecuteRequest{}); status != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", status)
	}

	// The serving counter moved.
	status, raw = do(t, ts, "GET", "/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if m := decode[MetricsResponse](t, raw); m.Server.Executions != 1 {
		t.Fatalf("executions counter = %d, want 1", m.Server.Executions)
	}
}
