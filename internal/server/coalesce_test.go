package server

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	entered := make(chan struct{})
	release := make(chan struct{})

	type out struct {
		val    any
		shared bool
	}
	first := make(chan out, 1)
	go func() {
		v, shared, _ := g.do("k", func() (any, error) {
			close(entered)
			<-release
			return 42, nil
		})
		first <- out{v, shared}
	}()
	<-entered // the leader is inside fn, so "k" is registered

	second := make(chan out, 1)
	go func() {
		v, shared, _ := g.do("k", func() (any, error) {
			t.Error("coalesced caller ran its own fn")
			return nil, nil
		})
		second <- out{v, shared}
	}()
	time.Sleep(20 * time.Millisecond) // let the follower park on the flight
	// Distinct keys never coalesce, even while "k" is in flight.
	if v, shared, _ := g.do("other", func() (any, error) { return 7, nil }); shared || v != 7 {
		t.Fatalf("distinct key: val=%v shared=%v", v, shared)
	}

	close(release)
	f, s := <-first, <-second
	if f.shared || f.val != 42 {
		t.Fatalf("leader: val=%v shared=%v", f.val, f.shared)
	}
	if !s.shared || s.val != 42 {
		t.Fatalf("follower: val=%v shared=%v, want coalesced 42", s.val, s.shared)
	}

	// The key is released: a later call runs fresh.
	if v, shared, _ := g.do("k", func() (any, error) { return 43, nil }); shared || v != 43 {
		t.Fatalf("post-flight call: val=%v shared=%v", v, shared)
	}
}

func TestFlightGroupConcurrentFollowers(t *testing.T) {
	var g flightGroup
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = g.do("k", func() (any, error) {
			close(entered)
			<-release
			return "v", nil
		})
	}()
	<-entered

	const followers = 32
	var wg sync.WaitGroup
	sharedCount := make(chan bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, _ := g.do("k", func() (any, error) { return "own", nil })
			if v != "v" {
				t.Errorf("follower got %v", v)
			}
			sharedCount <- shared
		}()
	}
	time.Sleep(5 * time.Millisecond) // give followers time to park on the flight
	close(release)
	wg.Wait()
	close(sharedCount)
	n := 0
	for s := range sharedCount {
		if s {
			n++
		}
	}
	if n != followers {
		t.Fatalf("%d/%d followers coalesced; all parked before release must", n, followers)
	}
}

// TestAnalyzeCoalescesOntoInFlight proves the handler consults the
// flight group under the documented key: with a flight pre-registered
// for (session, epoch, scheme, loop), a deadline-free batch parks on it and
// returns the in-flight value verbatim, counted as a coalesce hit.
func TestAnalyzeCoalescesOntoInFlight(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})
	loop := info.HotLoops[0].Name

	key := "analyze|" + info.ID + "|e0|SCAF|" + loop
	c := &flightCall{done: make(chan struct{})}
	srv.flights.mu.Lock()
	srv.flights.m = map[string]*flightCall{key: c}
	srv.flights.mu.Unlock()

	type result struct {
		status int
		raw    []byte
	}
	got := make(chan result, 1)
	go func() {
		status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
			AnalyzeRequest{Scheme: "scaf", Loops: []string{loop}})
		got <- result{status, raw}
	}()

	select {
	case r := <-got:
		t.Fatalf("request completed without waiting for the in-flight twin: %d %s", r.status, r.raw)
	case <-time.After(50 * time.Millisecond):
	}

	sentinel := WireLoopResult{Loop: loop, NoDepPct: 123.5}
	c.val = sentinel
	srv.flights.mu.Lock()
	delete(srv.flights.m, key)
	srv.flights.mu.Unlock()
	close(c.done)

	r := <-got
	if r.status != http.StatusOK {
		t.Fatalf("status %d, body %s", r.status, r.raw)
	}
	ar := decode[AnalyzeResponse](t, r.raw)
	if ar.CoalesceHits != 1 {
		t.Fatalf("coalesce_hits = %d, want 1", ar.CoalesceHits)
	}
	if len(ar.Results) != 1 || ar.Results[0].NoDepPct != sentinel.NoDepPct {
		t.Fatalf("coalesced result not returned verbatim: %s", r.raw)
	}
	if srv.coalesceHits.Load() != 1 {
		t.Fatalf("server coalesce counter = %d, want 1", srv.coalesceHits.Load())
	}
	// Deadline-bounded twins must NOT coalesce: a fresh flight under the
	// same key would now block them if they consulted the group.
	srv.flights.mu.Lock()
	srv.flights.m = map[string]*flightCall{key: {done: make(chan struct{})}}
	srv.flights.mu.Unlock()
	donec := make(chan result, 1)
	go func() {
		status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
			AnalyzeRequest{Scheme: "scaf", Loops: []string{loop}, DeadlineMS: 60000})
		donec <- result{status, raw}
	}()
	select {
	case r := <-donec:
		if r.status != http.StatusOK {
			t.Fatalf("deadline-bounded twin: status %d, body %s", r.status, r.raw)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadline-bounded request parked on a flight it must bypass")
	}
}
