package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fleetBackend is one restartable fleet instance: the listen address is
// reserved up front so peers and the router can be configured before the
// server exists, and survives a stop/start cycle.
type fleetBackend struct {
	id   string
	addr string
	cfg  Config
	srv  *Server
	ts   *httptest.Server
}

func (b *fleetBackend) url() string { return "http://" + b.addr }

func (b *fleetBackend) start(t *testing.T) {
	t.Helper()
	l, err := net.Listen("tcp", b.addr)
	if err != nil {
		t.Fatalf("backend %s: rebind %s: %v", b.id, b.addr, err)
	}
	b.srv = New(b.cfg)
	b.ts = httptest.NewUnstartedServer(b.srv.Handler())
	b.ts.Listener.Close()
	b.ts.Listener = l
	b.ts.Start()
}

func (b *fleetBackend) stop() {
	b.ts.Close()
	b.srv.fleet.Close()
}

// newFleetCluster reserves addresses for n backends, wires them as fleet
// peers of each other, starts them, and fronts them with a router.
func newFleetCluster(t *testing.T, n int, route string) ([]*fleetBackend, *Router, *httptest.Server) {
	t.Helper()
	backends := make([]*fleetBackend, n)
	for i := range backends {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = &fleetBackend{id: fmt.Sprintf("b%d", i), addr: l.Addr().String()}
		l.Close()
	}
	urls := map[string]string{}
	for _, b := range backends {
		urls[b.id] = b.url()
	}
	for _, b := range backends {
		peers := map[string]string{}
		for id, u := range urls {
			if id != b.id {
				peers[id] = u
			}
		}
		b.cfg = Config{Fleet: &FleetConfig{Self: b.id, Peers: peers, Timeout: 5 * time.Second}}
		b.start(t)
		b := b
		t.Cleanup(func() {
			if b.ts != nil {
				b.stop()
			}
		})
	}

	rt := NewRouter(RouterConfig{Backends: urls, Route: route})
	tsr := httptest.NewServer(rt.Handler())
	t.Cleanup(tsr.Close)
	t.Cleanup(rt.Close)
	return backends, rt, tsr
}

// TestRouterByteIdentity: the router fronting a 2-backend fleet serves
// responses byte-identical to a single cold instance — session create,
// batch analyze (spliced from a per-loop fan-out), and single queries,
// serially and under parallel load — in both routing modes.
func TestRouterByteIdentity(t *testing.T) {
	for _, route := range []string{"hash", "rr"} {
		t.Run(route, func(t *testing.T) {
			backends, _, tsr := newFleetCluster(t, 2, route)
			_, ref := newTestServer(t, Config{})

			req := CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}
			refStatus, refCreate := do(t, ref, "POST", "/sessions", req)
			gotStatus, gotCreate := do(t, tsr, "POST", "/sessions", req)
			if gotStatus != refStatus || !bytes.Equal(gotCreate, refCreate) {
				t.Fatalf("create diverged: %d %s vs %d %s", gotStatus, gotCreate, refStatus, refCreate)
			}
			info := decode[SessionInfo](t, gotCreate)

			// Serial: full response bodies must match byte for byte.
			refA, refAraw := do(t, ref, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
			gotA, gotAraw := do(t, tsr, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
			if gotA != refA || !bytes.Equal(gotAraw, refAraw) {
				t.Fatalf("%s: analyze diverged from single instance:\ngot  %.300s\nwant %.300s",
					route, gotAraw, refAraw)
			}

			var refResp struct {
				Results []json.RawMessage `json:"results"`
			}
			if err := json.Unmarshal(refAraw, &refResp); err != nil {
				t.Fatal(err)
			}
			var results []WireLoopResult
			raw, _ := json.Marshal(refResp.Results)
			if err := json.Unmarshal(raw, &results); err != nil {
				t.Fatal(err)
			}
			q0 := results[0].Queries[0]
			qreq := QueryRequest{Scheme: "scaf", Loop: results[0].Loop, I1: q0.I1, I2: q0.I2, Rel: q0.Rel}
			refQ, refQraw := do(t, ref, "POST", "/sessions/"+info.ID+"/query", qreq)
			gotQ, gotQraw := do(t, tsr, "POST", "/sessions/"+info.ID+"/query", qreq)
			if gotQ != refQ || !bytes.Equal(gotQraw, refQraw) {
				t.Fatalf("%s: query diverged:\ngot  %s\nwant %s", route, gotQraw, refQraw)
			}

			// Parallel: coalescing counters may appear in the envelopes, but
			// every served result must still be the reference bytes.
			var wg sync.WaitGroup
			errs := make(chan string, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 4; i++ {
						if (g+i)%2 == 0 {
							st, raw := do(t, tsr, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
							if st != http.StatusOK {
								errs <- fmt.Sprintf("parallel analyze: status %d: %.200s", st, raw)
								return
							}
							var got struct {
								Results []json.RawMessage `json:"results"`
							}
							if err := json.Unmarshal(raw, &got); err != nil || len(got.Results) != len(refResp.Results) {
								errs <- fmt.Sprintf("parallel analyze: bad envelope %.200s", raw)
								return
							}
							for j := range got.Results {
								if !bytes.Equal(got.Results[j], refResp.Results[j]) {
									errs <- fmt.Sprintf("parallel analyze: loop %d diverged", j)
									return
								}
							}
						} else {
							st, raw := do(t, tsr, "POST", "/sessions/"+info.ID+"/query", qreq)
							if st != http.StatusOK {
								errs <- fmt.Sprintf("parallel query: status %d: %.200s", st, raw)
								return
							}
							var got struct {
								Query json.RawMessage `json:"query"`
							}
							var want struct {
								Query json.RawMessage `json:"query"`
							}
							json.Unmarshal(raw, &got)
							json.Unmarshal(refQraw, &want)
							if !bytes.Equal(got.Query, want.Query) {
								errs <- fmt.Sprintf("parallel query diverged: %.200s", got.Query)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Error(e)
			}

			// The router's aggregate metrics cover every backend.
			st, raw := do(t, tsr, "GET", "/metrics", nil)
			if st != http.StatusOK {
				t.Fatalf("router metrics: %d %.200s", st, raw)
			}
			var rm RouterMetrics
			if err := json.Unmarshal(raw, &rm); err != nil {
				t.Fatal(err)
			}
			if len(rm.Backends) != len(backends) {
				t.Fatalf("metrics cover %d backends, want %d", len(rm.Backends), len(backends))
			}
			if rm.Router.Sessions != 1 || rm.Router.Route != route {
				t.Fatalf("router counters: %+v", rm.Router)
			}
		})
	}
}

// TestRouterFleetInconsistency: backends whose replicated state has
// drifted (here: a session created behind the router's back skews one
// backend's session-ID counter) must surface as 502 fleet_inconsistent on
// the next broadcast, never as silently divergent state.
func TestRouterFleetInconsistency(t *testing.T) {
	backends, _, tsr := newFleetCluster(t, 2, "hash")

	req := CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}
	direct := httptest.NewServer(backends[0].srv.Handler())
	defer direct.Close()
	if st, raw := do(t, direct, "POST", "/sessions", req); st != http.StatusCreated {
		t.Fatalf("direct create: %d %s", st, raw)
	}

	st, raw := do(t, tsr, "POST", "/sessions", req)
	if st != http.StatusBadGateway {
		t.Fatalf("create over skewed fleet: status %d, want 502 (body %.300s)", st, raw)
	}
	if e := decode[ErrorResponse](t, raw); e.Error.Code != "fleet_inconsistent" {
		t.Fatalf("code %q, want fleet_inconsistent", e.Error.Code)
	}
}

// TestRouterBackendLossAndRejoin: killing a backend mid-service refuses
// exactly its shard (503 + Retry-After) while the other keeps answering;
// after a restart the router replays the session journal (same IDs,
// including sessions created during the outage) and re-syncs quarantine
// state, and the rejoined backend serves byte-identical answers.
func TestRouterBackendLossAndRejoin(t *testing.T) {
	backends, rt, tsr := newFleetCluster(t, 2, "hash")
	bA, bB := backends[0], backends[1]

	req := CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}
	info := createSession(t, tsr, req)
	_, analyzeRaw := do(t, tsr, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
	var ar struct {
		Results []WireLoopResult `json:"results"`
	}
	if err := json.Unmarshal(analyzeRaw, &ar); err != nil {
		t.Fatal(err)
	}

	// Find one query homed on each backend.
	queryFor := func(owner string) *QueryRequest {
		for _, lr := range ar.Results {
			for _, q := range lr.Queries {
				key := "q|" + info.ID + "|scaf|" + lr.Loop + "|" + q.I1 + "|" + q.I2 + "|" + q.Rel
				if rt.ring.Owner(key) == owner {
					return &QueryRequest{Scheme: "scaf", Loop: lr.Loop, I1: q.I1, I2: q.I2, Rel: q.Rel}
				}
			}
		}
		return nil
	}
	qA, qB := queryFor("b0"), queryFor("b1")
	if qA == nil || qB == nil {
		t.Fatalf("query keys did not spread across both shards")
	}
	_, wantQA := do(t, tsr, "POST", "/sessions/"+info.ID+"/query", *qA)
	_, wantQB := do(t, tsr, "POST", "/sessions/"+info.ID+"/query", *qB)

	// Kill b1. Its shard is refused; b0's shard keeps answering.
	bB.stop()
	st, raw := do(t, tsr, "POST", "/sessions/"+info.ID+"/query", *qB)
	if st != http.StatusServiceUnavailable {
		// The first request may be the one that discovers the death.
		st, raw = do(t, tsr, "POST", "/sessions/"+info.ID+"/query", *qB)
	}
	if st != http.StatusServiceUnavailable {
		t.Fatalf("query to dead shard: status %d, want 503 (%.300s)", st, raw)
	}
	resp, err := http.Post(tsr.URL+"/sessions/"+info.ID+"/query", "application/json",
		bytes.NewReader(mustJSON(t, *qB)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("dead shard refusal lacks Retry-After: %d %v", resp.StatusCode, resp.Header)
	}
	if st, got := do(t, tsr, "POST", "/sessions/"+info.ID+"/query", *qA); st != http.StatusOK || !bytes.Equal(got, wantQA) {
		t.Fatalf("live shard degraded by the dead one: %d %.200s", st, got)
	}

	// Mutations during the outage: a new session is created on the
	// surviving backend and journaled for the dead one.
	info2 := createSession(t, tsr, CreateSessionRequest{Name: "small2", Source: smallSource, Plan: "off"})

	// A violation reported during the outage must reach b1 at rejoin. The
	// session owner may be the dead backend, so report directly to b0 (the
	// fleet broadcast towards the dead peer is tolerated noise).
	keys := harvestAsserts(AnalyzeResponse{Results: ar.Results})
	if len(keys) == 0 {
		t.Fatal("no predicating assertions to violate")
	}
	directA := httptest.NewServer(bA.srv.Handler())
	defer directA.Close()
	if st, raw := do(t, directA, "POST", "/sessions/"+info.ID+"/observe",
		ObserveRequest{Violations: []WireViolation{{Assertion: keys[0], Detail: "outage observe"}}}); st != http.StatusOK {
		t.Fatalf("observe on survivor: %d %s", st, raw)
	}
	_, wantQAafter := do(t, directA, "POST", "/sessions/"+info.ID+"/query", *qA)

	// Restart b1 and rejoin: journal replay + quarantine sync.
	bB.start(t)
	rt.Probe()
	if rt.isDown("b1") {
		t.Fatal("restarted backend did not rejoin")
	}
	if rt.rejoins.Load() != 1 {
		t.Fatalf("rejoins = %d, want 1", rt.rejoins.Load())
	}

	directB := httptest.NewServer(bB.srv.Handler())
	defer directB.Close()
	_, raw = do(t, directB, "GET", "/sessions", nil)
	sessions := decode[[]SessionInfo](t, raw)
	if len(sessions) != 2 || sessions[0].ID != info.ID || sessions[1].ID != info2.ID {
		t.Fatalf("replayed registry = %+v, want [%s %s]", sessions, info.ID, info2.ID)
	}

	// The rejoined backend serves its shard again, with the quarantine
	// applied: answers match the survivor's post-observe bytes.
	_, gotQB := do(t, tsr, "POST", "/sessions/"+info.ID+"/query", *qB)
	_, wantQBafter := do(t, directA, "POST", "/sessions/"+info.ID+"/query", *qB)
	if !bytes.Equal(gotQB, wantQBafter) {
		t.Fatalf("rejoined shard diverged from survivor:\ngot  %.300s\nwant %.300s", gotQB, wantQBafter)
	}
	if st, got := do(t, tsr, "POST", "/sessions/"+info.ID+"/query", *qA); st != http.StatusOK || !bytes.Equal(got, wantQAafter) {
		t.Fatalf("survivor shard changed across rejoin: %d", st)
	}
	_ = wantQB // pre-outage reference; post-recovery bytes may legitimately differ

	// Metrics surface the outage and rejoin.
	_, raw = do(t, tsr, "GET", "/metrics", nil)
	var rm RouterMetrics
	if err := json.Unmarshal(raw, &rm); err != nil {
		t.Fatal(err)
	}
	if rm.Router.Refused == 0 || rm.Router.Rejoins != 1 || len(rm.Router.Down) != 0 {
		t.Fatalf("router counters: %+v", rm.Router)
	}
	if len(rm.Backends) != 2 {
		t.Fatalf("metrics cover %d backends, want 2", len(rm.Backends))
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
