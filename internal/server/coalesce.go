package server

import "sync"

// flightGroup coalesces identical in-flight computations — a minimal
// singleflight. Only deadline-free work goes through it: a deadline-free
// answer is a pure function of (session, scheme, proposition), so every
// concurrent identical request can share one resolution, and sharing is
// invisible in the response bytes. Deadline-bounded requests bypass the
// group entirely: their answers may be cut short by the budget, and a
// degraded answer must never be served to a caller that asked for a
// different budget (the admission-side analogue of SharedCache's
// only-publish-complete-resolutions rule).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// do runs fn once per set of concurrent callers sharing key. The boolean
// reports whether this caller's result was coalesced onto another
// in-flight computation.
func (g *flightGroup) do(key string, fn func() (any, error)) (any, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}
