package server

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newElasticCluster is newFleetCluster with the knobs the membership
// tests need: tier auto-flush (so cross-owner publishes actually land on
// their owners before a segment export) and a router persist directory
// (so membership changes can be proven durable).
func newElasticCluster(t *testing.T, n int) ([]*fleetBackend, *Router, *httptest.Server, string) {
	t.Helper()
	backends := make([]*fleetBackend, n)
	for i := range backends {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = &fleetBackend{id: fmt.Sprintf("b%d", i), addr: l.Addr().String()}
		l.Close()
	}
	urls := map[string]string{}
	for _, b := range backends {
		urls[b.id] = b.url()
	}
	for _, b := range backends {
		peers := map[string]string{}
		for id, u := range urls {
			if id != b.id {
				peers[id] = u
			}
		}
		b.cfg = Config{Fleet: &FleetConfig{Self: b.id, Peers: peers,
			Timeout: 5 * time.Second, AutoFlush: 5 * time.Millisecond}}
		b.start(t)
		b := b
		t.Cleanup(func() {
			if b.ts != nil {
				b.stop()
			}
		})
	}
	dir := t.TempDir()
	rt := NewRouter(RouterConfig{Backends: urls, Route: "hash", CacheDir: dir,
		DrainTimeout: 10 * time.Second})
	tsr := httptest.NewServer(rt.Handler())
	t.Cleanup(tsr.Close)
	t.Cleanup(rt.Close)
	return backends, rt, tsr, dir
}

// newSpareBackend boots one extra fleet instance that is not yet a
// member: the joiner. Its tier peers are the current members; the
// router's membership push teaches everyone the rest.
func newSpareBackend(t *testing.T, id string, backends []*fleetBackend) *fleetBackend {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sp := &fleetBackend{id: id, addr: l.Addr().String()}
	l.Close()
	peers := map[string]string{}
	for _, b := range backends {
		peers[b.id] = b.url()
	}
	sp.cfg = Config{Fleet: &FleetConfig{Self: id, Peers: peers,
		Timeout: 5 * time.Second, AutoFlush: 5 * time.Millisecond}}
	sp.start(t)
	t.Cleanup(func() {
		if sp.ts != nil {
			sp.stop()
		}
	})
	return sp
}

// warmElasticFleet creates several sessions through the router and
// analyzes each one, so the backends publish loop-result entries into
// the cache tier; returns the session infos and each one's analyze gold.
// Each session gets a distinct source (the fleet digest covers source
// bytes, not the session name), so the published keys spread across the
// ring instead of collapsing onto one digest.
func warmElasticFleet(t *testing.T, tsr *httptest.Server, n int) ([]SessionInfo, [][]byte) {
	t.Helper()
	infos := make([]SessionInfo, n)
	golds := make([][]byte, n)
	for i := range infos {
		src := strings.Replace(smallSource, "r < 40", fmt.Sprintf("r < %d", 40+i), 1)
		infos[i] = createSession(t, tsr, CreateSessionRequest{
			Name: fmt.Sprintf("elastic-%d", i), Source: src, Plan: "off"})
		st, raw := do(t, tsr, "POST", "/sessions/"+infos[i].ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
		if st != http.StatusOK {
			t.Fatalf("warm analyze %d: %d %.300s", i, st, raw)
		}
		golds[i] = raw
	}
	// Let the tiers' auto-flush land queued cross-owner publishes.
	time.Sleep(50 * time.Millisecond)
	return infos, golds
}

// TestElasticJoin is the tentpole happy path: a live join streams the
// session journal and warm cache segments into the spare, flips the
// ring, and afterwards (a) answers are byte-identical to the pre-join
// fleet, (b) the joiner serves warm hits from its streamed segments
// (nonvacuity), and (c) the grown membership survives a router restart.
func TestElasticJoin(t *testing.T) {
	backends, rt, tsr, dir := newElasticCluster(t, 2)
	spare := newSpareBackend(t, "j0", backends)
	infos, golds := warmElasticFleet(t, tsr, 6)

	st, raw := do(t, tsr, "POST", "/fleet/join", JoinRequest{ID: "j0", URL: spare.url()})
	if st != http.StatusOK {
		t.Fatalf("join: %d %.400s", st, raw)
	}
	rep := decode[MoveReport](t, raw)
	if rep.Op != "join" || len(rep.Members) != 3 {
		t.Fatalf("join report: %+v", rep)
	}
	if rep.JournalReplayed == 0 {
		t.Fatalf("join replayed no journal entries: %+v", rep)
	}
	if rep.EntriesInserted == 0 {
		t.Fatalf("join streamed no warm entries — the cutover is vacuous: %+v", rep)
	}

	// The joiner holds the replayed session registry.
	direct := httptest.NewServer(spare.srv.Handler())
	defer direct.Close()
	_, sraw := do(t, direct, "GET", "/sessions", nil)
	if got := decode[[]SessionInfo](t, sraw); len(got) != len(infos) {
		t.Fatalf("joiner holds %d sessions, want %d", len(got), len(infos))
	}

	// Byte identity across the cutover, and nonvacuity: re-analyzing the
	// same sessions must produce the same bytes, with the joiner serving
	// whole loops from the cache tier it was streamed.
	for i, info := range infos {
		st, raw := do(t, tsr, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
		if st != http.StatusOK || !bytes.Equal(raw, golds[i]) {
			t.Fatalf("analyze %d diverged across join: %d\ngot  %.300s\nwant %.300s", i, st, raw, golds[i])
		}
	}
	_, mraw := do(t, direct, "GET", "/metrics", nil)
	jm := decode[MetricsResponse](t, mraw)
	if jm.Server.FleetLoopHits == 0 {
		t.Fatalf("joiner served no fleet loop hits after the move: %+v", jm.Server)
	}

	// Router counters surface the move; no inconsistency, ever.
	_, rraw := do(t, tsr, "GET", "/metrics", nil)
	rm := decode[RouterMetrics](t, rraw)
	if rm.Router.Joins != 1 || rm.Router.Rollbacks != 0 || rm.Router.Inconsistent != 0 {
		t.Fatalf("router counters after join: %+v", rm.Router)
	}
	if len(rm.Router.Members) != 3 || rm.Router.Pending != "" {
		t.Fatalf("membership after join: %+v", rm.Router)
	}

	// Membership is durable: a restarted router booted from the original
	// two-backend flag learns j0 back from its snapshot.
	rt.Close()
	rt2 := NewRouter(RouterConfig{
		Backends: map[string]string{"b0": backends[0].url(), "b1": backends[1].url()},
		CacheDir: dir,
	})
	defer rt2.Close()
	rt2.mu.Lock()
	ids := append([]string(nil), rt2.ids...)
	rt2.mu.Unlock()
	if len(ids) != 3 || ids[2] != "j0" {
		t.Fatalf("restarted router lost the joined member: %v", ids)
	}
}

// TestElasticJoinKillJoinerMidStream kills the joiner in the middle of
// segment streaming: the move must roll back — membership, ring, and
// service exactly as before — and a retry with a fresh joiner succeeds.
func TestElasticJoinKillJoinerMidStream(t *testing.T) {
	backends, rt, tsr, _ := newElasticCluster(t, 2)
	spare := newSpareBackend(t, "j0", backends)
	infos, golds := warmElasticFleet(t, tsr, 4)

	rt.moveHook = func(op, phase, id string) {
		if op == "join" && phase == "streaming" {
			spare.stop()
		}
	}
	st, raw := do(t, tsr, "POST", "/fleet/join", JoinRequest{ID: "j0", URL: spare.url()})
	if st == http.StatusOK {
		t.Fatalf("join with a dead joiner succeeded: %.300s", raw)
	}
	if e := decode[ErrorResponse](t, raw); e.Error.Code != "join_failed" {
		t.Fatalf("code %q, want join_failed (%.300s)", e.Error.Code, raw)
	}
	if rt.rollbacks.Load() != 1 {
		t.Fatalf("rollbacks = %d, want 1", rt.rollbacks.Load())
	}

	// The fleet is exactly as before: two members, no fence, same bytes.
	_, rraw := do(t, tsr, "GET", "/metrics", nil)
	rm := decode[RouterMetrics](t, rraw)
	if len(rm.Router.Members) != 2 || rm.Router.Pending != "" || rm.Router.Joins != 0 {
		t.Fatalf("membership after rollback: %+v", rm.Router)
	}
	for i, info := range infos {
		st, raw := do(t, tsr, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
		if st != http.StatusOK || !bytes.Equal(raw, golds[i]) {
			t.Fatalf("analyze %d degraded by the rolled-back join", i)
		}
	}

	// Retry with a restarted (empty) joiner: must go through cleanly.
	rt.moveHook = nil
	spare.start(t)
	st, raw = do(t, tsr, "POST", "/fleet/join", JoinRequest{ID: "j0", URL: spare.url()})
	if st != http.StatusOK {
		t.Fatalf("retry join: %d %.400s", st, raw)
	}
	if rep := decode[MoveReport](t, raw); len(rep.Members) != 3 {
		t.Fatalf("retry join report: %+v", rep)
	}
}

// TestElasticJoinKillOwnerMidDrain kills one of the old owners at the
// draining phase: the join must still complete — the dead owner's
// segments degrade to the usual 503 shard refusal, never to a wedged or
// inconsistent fleet.
func TestElasticJoinKillOwnerMidDrain(t *testing.T) {
	backends, rt, tsr, _ := newElasticCluster(t, 2)
	spare := newSpareBackend(t, "j0", backends)
	infos, _ := warmElasticFleet(t, tsr, 3)

	rt.moveHook = func(op, phase, id string) {
		if op == "join" && phase == "draining" {
			backends[1].stop()
		}
	}
	st, raw := do(t, tsr, "POST", "/fleet/join", JoinRequest{ID: "j0", URL: spare.url()})
	if st != http.StatusOK {
		t.Fatalf("join across an owner death: %d %.400s", st, raw)
	}
	if rep := decode[MoveReport](t, raw); len(rep.Members) != 3 {
		t.Fatalf("join report: %+v", rep)
	}

	// Reads still flow: every analyze either answers the canonical bytes
	// or refuses with the bounded 503 for the dead owner's segments.
	for _, info := range infos {
		st, raw := do(t, tsr, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
		if st != http.StatusOK && st != http.StatusServiceUnavailable {
			t.Fatalf("analyze after owner death: %d %.300s", st, raw)
		}
	}
	_, rraw := do(t, tsr, "GET", "/metrics", nil)
	rm := decode[RouterMetrics](t, rraw)
	if rm.Router.Inconsistent != 0 || rm.Router.Joins != 1 {
		t.Fatalf("router counters: %+v", rm.Router)
	}
}

// TestElasticMoveExclusion pins the one-move-at-a-time rule and the
// validation surface: double join and leave-during-join refuse with
// move_in_progress, joining a member and removing the last member
// refuse, removing a non-member 404s.
func TestElasticMoveExclusion(t *testing.T) {
	backends, rt, tsr, _ := newElasticCluster(t, 2)
	spare := newSpareBackend(t, "j0", backends)
	warmElasticFleet(t, tsr, 2)

	entered := make(chan struct{})
	release := make(chan struct{})
	rt.moveHook = func(op, phase, id string) {
		if op == "join" && phase == "streaming" {
			close(entered)
			<-release
		}
	}
	type result struct {
		st  int
		raw []byte
	}
	done := make(chan result, 1)
	go func() {
		st, raw := do(t, tsr, "POST", "/fleet/join", JoinRequest{ID: "j0", URL: spare.url()})
		done <- result{st, raw}
	}()
	<-entered

	// A second join and a leave while the first join is mid-move.
	if st, raw := do(t, tsr, "POST", "/fleet/join", JoinRequest{ID: "j1", URL: "http://127.0.0.1:1"}); st != http.StatusConflict {
		t.Fatalf("double join: %d %.300s", st, raw)
	} else if e := decode[ErrorResponse](t, raw); e.Error.Code != "move_in_progress" {
		t.Fatalf("double join code %q", e.Error.Code)
	}
	if st, raw := do(t, tsr, "POST", "/fleet/leave", LeaveRequest{ID: "b0"}); st != http.StatusConflict {
		t.Fatalf("leave during join: %d %.300s", st, raw)
	} else if e := decode[ErrorResponse](t, raw); e.Error.Code != "move_in_progress" {
		t.Fatalf("leave-during-join code %q", e.Error.Code)
	}
	close(release)
	if r := <-done; r.st != http.StatusOK {
		t.Fatalf("paused join did not complete: %d %.400s", r.st, r.raw)
	}

	rt.moveHook = nil
	if st, raw := do(t, tsr, "POST", "/fleet/join", JoinRequest{ID: "b0", URL: backends[0].url()}); st != http.StatusConflict {
		t.Fatalf("join of a member: %d %.300s", st, raw)
	} else if e := decode[ErrorResponse](t, raw); e.Error.Code != "already_member" {
		t.Fatalf("member-join code %q", e.Error.Code)
	}
	if st, _ := do(t, tsr, "POST", "/fleet/leave", LeaveRequest{ID: "zz"}); st != http.StatusNotFound {
		t.Fatalf("leave of a stranger: %d", st)
	}

	// Shrink to one member, then refuse to go to zero.
	for _, id := range []string{"j0", "b1"} {
		if st, raw := do(t, tsr, "POST", "/fleet/leave", LeaveRequest{ID: id}); st != http.StatusOK {
			t.Fatalf("leave %s: %d %.400s", id, st, raw)
		}
	}
	if st, raw := do(t, tsr, "POST", "/fleet/leave", LeaveRequest{ID: "b0"}); st != http.StatusConflict {
		t.Fatalf("leave of the last member: %d %.300s", st, raw)
	} else if e := decode[ErrorResponse](t, raw); e.Error.Code != "last_member" {
		t.Fatalf("last-member code %q", e.Error.Code)
	}
}

// TestElasticLeave pins the leave dual: a live leave hands the leaver's
// warm segments to its successors and the shrunk fleet serves the same
// bytes; removing an already-dead member completes without streaming
// (cold successors, never a wedge).
func TestElasticLeave(t *testing.T) {
	backends, rt, tsr, _ := newElasticCluster(t, 3)
	infos, golds := warmElasticFleet(t, tsr, 6)

	st, raw := do(t, tsr, "POST", "/fleet/leave", LeaveRequest{ID: "b0"})
	if st != http.StatusOK {
		t.Fatalf("leave: %d %.400s", st, raw)
	}
	rep := decode[MoveReport](t, raw)
	if rep.Op != "leave" || len(rep.Members) != 2 {
		t.Fatalf("leave report: %+v", rep)
	}
	if rep.EntriesInserted == 0 {
		t.Fatalf("live leave streamed no warm entries to successors: %+v", rep)
	}
	for i, info := range infos {
		st, raw := do(t, tsr, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
		if st != http.StatusOK || !bytes.Equal(raw, golds[i]) {
			t.Fatalf("analyze %d diverged across leave: %d", i, st)
		}
	}

	// Dead-member removal: kill b1, then remove it. No streaming is
	// possible; the move must still complete.
	backends[1].stop()
	st, raw = do(t, tsr, "POST", "/fleet/leave", LeaveRequest{ID: "b1"})
	if st != http.StatusOK {
		t.Fatalf("leave of a dead member: %d %.400s", st, raw)
	}
	rep = decode[MoveReport](t, raw)
	if len(rep.Members) != 1 || rep.EntriesInserted != 0 || rep.OwnersSkipped == 0 {
		t.Fatalf("dead-member leave report: %+v", rep)
	}
	// The survivor serves everything (cold where segments were lost).
	for _, info := range infos {
		if st, raw := do(t, tsr, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"}); st != http.StatusOK {
			t.Fatalf("analyze on the shrunk fleet: %d %.300s", st, raw)
		}
	}
	if rt.leaves.Load() != 2 || rt.inconsistent.Load() != 0 {
		t.Fatalf("leaves=%d inconsistent=%d", rt.leaves.Load(), rt.inconsistent.Load())
	}
}

// TestRouterProbeBackoff pins the prober's capped exponential backoff:
// consecutive failures double the reprobe delay up to ProbeMax, the
// jitter is deterministic in (id, fails), a not-yet-due backend is
// skipped by the periodic pass, and /metrics exposes the state.
func TestRouterProbeBackoff(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()
	rt := NewRouter(RouterConfig{
		Backends: map[string]string{"b0": "http://" + deadAddr},
		Probe:    time.Hour, // ticker never fires during the test
		ProbeMax: 8 * time.Hour,
		Timeout:  time.Second,
	})
	defer rt.Close()
	rt.markDown("b0")

	for i := 0; i < 3; i++ {
		rt.Probe() // forced probes still do backoff bookkeeping
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	_, raw := do(t, rts, "GET", "/metrics", nil)
	m := decode[RouterMetrics](t, raw)
	pi, ok := m.Router.Probes["b0"]
	if !ok || pi.Failures != 3 || pi.BackoffMS == 0 {
		t.Fatalf("probe state in metrics: %+v", m.Router.Probes)
	}

	base, limit := time.Hour, 8*time.Hour
	d1, d2, d3 := rt.backoffDelay("b0", 1), rt.backoffDelay("b0", 2), rt.backoffDelay("b0", 3)
	if d1 < base || d1 > base+base/4 {
		t.Fatalf("fails=1 delay %v outside [base, base+25%%]", d1)
	}
	if d2 < 2*base || d2 > 2*base+base/2 {
		t.Fatalf("fails=2 delay %v did not double", d2)
	}
	if d3 <= d2-base/2 {
		t.Fatalf("fails=3 delay %v did not grow past fails=2 (%v)", d3, d2)
	}
	if dCap := rt.backoffDelay("b0", 50); dCap < limit || dCap > limit+limit/4 {
		t.Fatalf("capped delay %v outside [limit, limit+25%%]", dCap)
	}
	if rt.backoffDelay("b0", 3) != d3 {
		t.Fatal("jitter is not deterministic in (id, fails)")
	}
	if rt.backoffDelay("bX", 3) == d3 {
		t.Fatal("jitter does not separate distinct backends")
	}

	// The periodic pass skips a backend whose backoff has not elapsed…
	rt.probeDue(time.Now())
	if got := rt.probe["b0"].fails; got != 3 {
		t.Fatalf("not-yet-due backend was probed: fails=%d", got)
	}
	// …and probes it once the delay has passed.
	rt.probeDue(time.Now().Add(48 * time.Hour))
	if got := rt.probe["b0"].fails; got != 4 {
		t.Fatalf("due backend was not probed: fails=%d", got)
	}
}
