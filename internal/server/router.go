package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scaf/internal/fleet"
	"scaf/internal/persist"
	"scaf/internal/recovery"
)

// The fleet's front tier: a Router speaks the exact scaf-serve HTTP
// surface and spreads it across N backend instances. Session mutations
// (create, delete) broadcast to every backend in one serialized order, so
// the backends' session registries — and their sequential session IDs —
// stay identical; read traffic (analyze, query) shards across backends by
// consistent hash (or round-robin), which is sound because every answer
// is a pure function of (session state, proposition): any backend serves
// the same bytes, the fleet cache tier only changes who computes them.
//
// There is deliberately no failover: a request for a down backend's shard
// is refused with 503 + Retry-After rather than silently re-homed, so a
// partition degrades capacity, never placement determinism. A restarted
// backend is caught up by replaying the session journal (rebuilding the
// same IDs in the same order) and re-synchronizing quarantine state from
// a live peer before it takes traffic again.

// RouterConfig configures a fleet front tier.
type RouterConfig struct {
	// Backends maps backend IDs to base URLs (e.g. "b0" ->
	// "http://127.0.0.1:8347"). IDs are the shard names.
	Backends map[string]string
	// Route picks the read-routing policy: "hash" (default; consistent
	// hash, deterministic placement) or "rr" (round-robin, best spread).
	Route string
	// Timeout bounds each proxied backend request (0: unbounded — analyze
	// batches can legitimately run long).
	Timeout time.Duration
	// Probe is the health-probe period for down backends (0: no background
	// prober; Probe() can still be called explicitly).
	Probe time.Duration
	// ProbeMax caps the prober's exponential backoff per down backend
	// (0: 16× Probe). Each consecutive failed probe doubles that
	// backend's reprobe delay from Probe up to this cap, with a small
	// deterministic jitter derived from (id, failure count) so a wall of
	// routers probing the same dead backend never synchronizes.
	ProbeMax time.Duration
	// DrainTimeout bounds the fenced drain during a membership change
	// (0: 30s). If in-flight reads have not finished by then, the move
	// rolls back to the old owner instead of wedging the fleet.
	DrainTimeout time.Duration
	// CacheDir, when non-empty, persists the router's session journal and
	// session→loops map there on Close and loads them on boot, so a
	// restarted router keeps its rejoin power: it can still replay the
	// full mutation history into an empty backend. Validated with the
	// same checksummed framing as the cache snapshots — a corrupt file
	// degrades to the valid prefix (at worst a cold router), never a
	// wrong replay. Membership changes are persisted too, so a restarted
	// router serves the post-elasticity fleet, not the boot-time one.
	CacheDir string
}

const defaultDrainTimeout = 30 * time.Second

// routerJournalEntry is one replayable session mutation.
type routerJournalEntry struct {
	method, path string
	body         []byte
}

// ProbeInfo is one down backend's prober state as exposed in /metrics:
// consecutive failures, the current backoff delay, and how far away the
// next probe is.
type ProbeInfo struct {
	Failures  int   `json:"failures"`
	BackoffMS int64 `json:"backoff_ms"`
	NextInMS  int64 `json:"next_in_ms"`
}

// RouterCounters are the router's own /metrics counters.
type RouterCounters struct {
	Proxied      int64                `json:"proxied"`
	Fanouts      int64                `json:"fanouts"`
	Refused      int64                `json:"refused"`
	Inconsistent int64                `json:"inconsistent"`
	Rejoins      int64                `json:"rejoins"`
	Joins        int64                `json:"joins"`
	Leaves       int64                `json:"leaves"`
	Rollbacks    int64                `json:"rollbacks"`
	Moved503     int64                `json:"moved_503"`
	Sessions     int                  `json:"sessions"`
	Route        string               `json:"route"`
	Members      []string             `json:"members"`
	Pending      string               `json:"pending,omitempty"`
	Down         []string             `json:"down,omitempty"`
	Probes       map[string]ProbeInfo `json:"probes,omitempty"`
}

// RouterMetrics is the router's /metrics body: its own counters plus each
// live backend's verbatim metrics document.
type RouterMetrics struct {
	Router   RouterCounters             `json:"router"`
	Backends map[string]json.RawMessage `json:"backends"`
}

// RouterHealth is the router's /healthz body.
type RouterHealth struct {
	Status   string            `json:"status"`
	Backends map[string]string `json:"backends"`
	Sessions int               `json:"sessions"`
}

// readGen is one read generation: every sharded read joins the current
// generation for its lifetime, and a membership cutover drains the old
// generation (waits for its WaitGroup) after installing the fence.
type readGen struct {
	wg sync.WaitGroup
}

// probeState is the prober's per-down-backend backoff state.
type probeState struct {
	fails int
	next  time.Time
}

// Router is the fleet front tier.
type Router struct {
	cfg RouterConfig
	hc  *http.Client
	mux *http.ServeMux

	// bmu serializes session mutations, rejoins, and the fenced phase of
	// membership moves: every backend sees creates and deletes in the
	// same order, which is what keeps their sequential session-ID
	// counters aligned.
	bmu sync.Mutex

	// mu guards the mutable fleet view. Membership is live: join/leave
	// rewrite ids/base/ring, and during a cutover nextRing carries the
	// post-move placement (the epoch fence) while gen tracks in-flight
	// sharded reads so the old placement can be drained before the flip.
	mu       sync.Mutex
	ids      []string
	base     map[string]string
	ring     *fleet.Ring
	nextRing *fleet.Ring // non-nil only while a segment fence is up
	gen      *readGen
	moveID   string // backend mid-join/mid-leave ("" when no move)
	moveOp   string // "join" or "leave"
	down     map[string]bool
	probe    map[string]*probeState
	sessions map[string][]string // session id -> hot loop names
	journal  []routerJournalEntry

	rrNext                                           atomic.Uint64
	proxied, fanouts, refused, inconsistent, rejoins atomic.Int64
	joins, leaves, rollbacks, moved503               atomic.Int64

	// moveHook, when set before serving, observes cutover phase
	// transitions (op, phase, id). Test seam for killing participants at
	// exact points of the state machine.
	moveHook func(op, phase, id string)

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// NewRouter builds a front tier over cfg.Backends.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Route == "" {
		cfg.Route = "hash"
	}
	rt := &Router{
		cfg:      cfg,
		base:     map[string]string{},
		hc:       &http.Client{Timeout: cfg.Timeout},
		gen:      &readGen{},
		down:     map[string]bool{},
		probe:    map[string]*probeState{},
		sessions: map[string][]string{},
		stop:     make(chan struct{}),
	}
	for id, base := range cfg.Backends {
		rt.ids = append(rt.ids, id)
		rt.base[id] = base
	}
	sort.Strings(rt.ids)
	rt.ring = fleet.NewRing(rt.ids, 0)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("POST /sessions", rt.handleCreate)
	mux.HandleFunc("GET /sessions", rt.handleReadAny)
	mux.HandleFunc("GET /sessions/{id}", rt.handleReadAny)
	mux.HandleFunc("DELETE /sessions/{id}", rt.handleDelete)
	mux.HandleFunc("POST /sessions/{id}/analyze", rt.handleAnalyze)
	mux.HandleFunc("POST /sessions/{id}/query", rt.handleQuery)
	mux.HandleFunc("POST /sessions/{id}/observe", rt.handleMutation)
	mux.HandleFunc("POST /sessions/{id}/execute", rt.handleMutation)
	mux.HandleFunc("POST /fleet/join", rt.handleJoin)
	mux.HandleFunc("POST /fleet/leave", rt.handleLeave)
	rt.mux = mux

	if cfg.CacheDir != "" {
		rt.loadPersist()
	}
	if cfg.Probe > 0 {
		rt.done.Add(1)
		go rt.probeLoop(cfg.Probe)
	}
	return rt
}

// routerJournalRecord / routerSessionRecord are the on-disk forms of
// the router's replay state.
type routerJournalRecord struct {
	Method string `json:"method"`
	Path   string `json:"path"`
	Body   []byte `json:"body,omitempty"`
}

type routerSessionRecord struct {
	ID    string   `json:"id"`
	Loops []string `json:"loops"`
}

// routerMemberRecord is one fleet member on disk: membership is live
// state now, so a restarted router must serve the post-elasticity
// fleet, not the boot-time -backends flag.
type routerMemberRecord struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

func (rt *Router) persistPath() string {
	return filepath.Join(rt.cfg.CacheDir, "router.snap")
}

// savePersist writes the journal and session map with the persist
// framing (atomic temp+rename via a full re-encode — the journal is
// small relative to cache shards, and a single atomic file keeps the
// two structures consistent with each other).
func (rt *Router) savePersist() {
	if err := os.MkdirAll(rt.cfg.CacheDir, 0o755); err != nil {
		log.Printf("router: persist save: %v", err)
		return
	}
	rt.mu.Lock()
	records := make([]persist.Record, 0, len(rt.ids)+len(rt.journal)+len(rt.sessions))
	for _, id := range rt.ids {
		p, _ := json.Marshal(routerMemberRecord{ID: id, URL: rt.base[id]})
		records = append(records, persist.Record{Kind: persist.KindMembers, Payload: p})
	}
	for _, je := range rt.journal {
		p, _ := json.Marshal(routerJournalRecord{Method: je.method, Path: je.path, Body: je.body})
		records = append(records, persist.Record{Kind: persist.KindJournal, Payload: p})
	}
	sids := make([]string, 0, len(rt.sessions))
	for sid := range rt.sessions {
		sids = append(sids, sid)
	}
	sort.Strings(sids)
	for _, sid := range sids {
		p, _ := json.Marshal(routerSessionRecord{ID: sid, Loops: rt.sessions[sid]})
		records = append(records, persist.Record{Kind: persist.KindSessions, Payload: p})
	}
	rt.mu.Unlock()
	data := persist.EncodeFile(records)
	// Mirror Store.Save: write + fsync the temp file before the rename,
	// so the renamed router.snap is never empty or partial on power
	// loss; the old snapshot survives any failure before the rename.
	tmp, err := os.CreateTemp(rt.cfg.CacheDir, "router.snap.tmp-")
	if err != nil {
		log.Printf("router: persist save: %v", err)
		return
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), rt.persistPath())
	}
	if werr != nil {
		os.Remove(tmp.Name())
		log.Printf("router: persist save: %v", werr)
	}
}

// loadPersist restores the journal and session map from a prior
// graceful Close. Corruption degrades to the valid prefix; since the
// journal is replayed only into empty backends (rejoin), a short
// journal can at worst fail a future rejoin's session-set check — it
// cannot desynchronize a live fleet.
func (rt *Router) loadPersist() {
	data, err := os.ReadFile(rt.persistPath())
	if err != nil {
		return
	}
	records, _ := persist.DecodeFile(data)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// Member records come first in the file; apply whatever complete set
	// was read even if a later record stops the load (valid-prefix rule).
	// The boot-time Backends map stays authoritative for the IDs it
	// names (an operator restarting the router with fresh URLs must win);
	// persisted records extend it with backends that joined live and were
	// never in the flags. A snapshot from before elasticity has no member
	// records and changes nothing.
	members := map[string]string{}
	defer func() {
		grown := false
		for id, u := range members {
			if _, known := rt.base[id]; !known {
				rt.ids = append(rt.ids, id)
				rt.base[id] = u
				grown = true
			}
		}
		if grown {
			sort.Strings(rt.ids)
			rt.ring = fleet.NewRing(rt.ids, 0)
		}
	}()
	for _, r := range records {
		switch r.Kind {
		case persist.KindMembers:
			var mr routerMemberRecord
			if err := json.Unmarshal(r.Payload, &mr); err != nil || mr.ID == "" || mr.URL == "" {
				return
			}
			members[mr.ID] = mr.URL
		case persist.KindJournal:
			var jr routerJournalRecord
			if err := json.Unmarshal(r.Payload, &jr); err != nil {
				return
			}
			rt.journal = append(rt.journal, routerJournalEntry{method: jr.Method, path: jr.Path, body: jr.Body})
		case persist.KindSessions:
			var sr routerSessionRecord
			if err := json.Unmarshal(r.Payload, &sr); err != nil {
				return
			}
			rt.sessions[sr.ID] = sr.Loops
		default:
			return
		}
	}
}

// Handler returns the router's HTTP handler (the scaf-serve surface).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the background prober, drops pooled backend connections,
// and persists the session journal when a CacheDir is configured.
// Closing the pool matters for orderly teardown: a spare never-used
// connection parked on a backend reads as StateNew there, and
// http.Server.Shutdown only reaps those after a five-second grace.
// Idempotent and safe under concurrent callers; every Close returns
// only after the teardown has completed exactly once.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() {
		close(rt.stop)
		rt.done.Wait()
		rt.hc.CloseIdleConnections()
		if rt.cfg.CacheDir != "" {
			rt.savePersist()
		}
	})
}

func (rt *Router) probeLoop(period time.Duration) {
	defer rt.done.Done()
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case now := <-t.C:
			rt.probeDue(now)
		}
	}
}

// backoffDelay computes a down backend's reprobe delay: the probe period
// doubled per consecutive failure, capped at ProbeMax, plus a
// deterministic jitter in [0, delay/4] derived from (id, fails) — the
// same inputs give the same delay everywhere, so behavior stays
// reproducible, while distinct backends (and successive failures)
// de-synchronize instead of stampeding together.
func (rt *Router) backoffDelay(id string, fails int) time.Duration {
	base := rt.cfg.Probe
	if base <= 0 {
		base = 2 * time.Second
	}
	limit := rt.cfg.ProbeMax
	if limit <= 0 {
		limit = 16 * base
	}
	d := base
	for i := 1; i < fails && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", id, fails)
	return d + time.Duration(h.Sum64()%uint64(d/4+1))
}

// probeDue probes only the down backends whose backoff has elapsed; a
// zero now forces all of them (explicit Probe()).
func (rt *Router) probeDue(now time.Time) {
	rt.mu.Lock()
	var due []string
	for _, id := range rt.ids {
		if !rt.down[id] {
			continue
		}
		st := rt.probe[id]
		if now.IsZero() || st == nil || !now.Before(st.next) {
			due = append(due, id)
		}
	}
	rt.mu.Unlock()
	for _, id := range due {
		rt.tryRejoin(id)
		rt.mu.Lock()
		if rt.down[id] {
			st := rt.probe[id]
			if st == nil {
				st = &probeState{}
				rt.probe[id] = st
			}
			st.fails++
			st.next = time.Now().Add(rt.backoffDelay(id, st.fails))
		} else {
			delete(rt.probe, id)
		}
		rt.mu.Unlock()
	}
}

// ---- backend bookkeeping ----

func (rt *Router) isDown(id string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.down[id]
}

func (rt *Router) markDown(id string) {
	rt.mu.Lock()
	rt.down[id] = true
	rt.mu.Unlock()
}

// upIDs returns the live backends, sorted.
func (rt *Router) upIDs() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var up []string
	for _, id := range rt.ids {
		if !rt.down[id] {
			up = append(up, id)
		}
	}
	return up
}

// pick chooses the backend for a read keyed by key. In rr mode down
// backends are skipped (round-robin has no placement to preserve); in
// hash mode the shard owner is returned even when down — the caller
// refuses the request rather than re-homing it.
func (rt *Router) pick(key string) (string, *httpError) {
	if rt.cfg.Route == "rr" {
		up := rt.upIDs()
		if len(up) == 0 {
			return "", rt.errNoBackends()
		}
		return up[rt.rrNext.Add(1)%uint64(len(up))], nil
	}
	return rt.pickHash(key)
}

// owner returns the session's home backend (mutations always go there,
// in both routing modes, so re-resolution work lands deterministically).
func (rt *Router) owner(sid string) (string, *httpError) {
	return rt.pickHash("s|" + sid)
}

func (rt *Router) pickHash(key string) (string, *httpError) {
	rt.mu.Lock()
	id := rt.ring.Owner(key)
	moving := rt.nextRing != nil && rt.nextRing.Owner(key) != id
	down := rt.down[id]
	rt.mu.Unlock()
	if moving {
		// The epoch fence: this key's segment is mid-cutover. Refusing
		// with a bounded, retryable 503 is the only client-visible effect
		// of a move — the key is never served from two owners at once.
		rt.moved503.Add(1)
		rt.refused.Add(1)
		he := &httpError{status: http.StatusServiceUnavailable,
			detail: ErrorDetail{Code: "backend_down",
				Message: fmt.Sprintf("segment owned by %s is moving; retry shortly", id)}}
		he.retryAfter = "1"
		return "", he
	}
	if down {
		rt.refused.Add(1)
		he := &httpError{status: http.StatusServiceUnavailable,
			detail: ErrorDetail{Code: "backend_down",
				Message: fmt.Sprintf("backend %s owns this shard and is down", id)}}
		he.retryAfter = "1"
		return "", he
	}
	return id, nil
}

// beginRead joins the current read generation; the caller must call
// endRead (Done) when the read finishes. A cutover swaps the generation
// after installing the fence and waits out the old one, so every read
// admitted under the old placement completes before ownership flips.
func (rt *Router) beginRead() *readGen {
	rt.mu.Lock()
	g := rt.gen
	g.wg.Add(1)
	rt.mu.Unlock()
	return g
}

func (rt *Router) errNoBackends() *httpError {
	rt.refused.Add(1)
	he := &httpError{status: http.StatusServiceUnavailable,
		detail: ErrorDetail{Code: "backend_down", Message: "no live backends"}}
	he.retryAfter = "1"
	return he
}

// baseURL resolves a backend's base URL under the membership lock.
func (rt *Router) baseURL(id string) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.base[id]
}

// send issues one backend request. A transport error marks the backend
// down and is reported as (0, nil, nil).
func (rt *Router) send(id, method, path string, body []byte) (int, http.Header, []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, rt.baseURL(id)+path, rd)
	if err != nil {
		rt.markDown(id)
		return 0, nil, nil
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		rt.markDown(id)
		return 0, nil, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
	if err != nil {
		rt.markDown(id)
		return 0, nil, nil
	}
	rt.proxied.Add(1)
	return resp.StatusCode, resp.Header, raw
}

const maxPeerResponse = 64 << 20

// relay writes a backend response through verbatim; status 0 (transport
// failure) becomes a 503.
func (rt *Router) relay(w http.ResponseWriter, id string, status int, hdr http.Header, body []byte) {
	if status == 0 {
		he := &httpError{status: http.StatusServiceUnavailable,
			detail: ErrorDetail{Code: "backend_down",
				Message: fmt.Sprintf("backend %s did not answer", id)}}
		he.retryAfter = "1"
		writeError(w, he)
		return
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := hdr.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(status)
	w.Write(body)
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, errBadRequest("reading request body: %v", err))
		return nil, false
	}
	return body, true
}

// ---- session mutations: serialized broadcast ----

// broadcast sends one mutation to every live backend in parallel (each
// backend sees at most one in-flight mutation thanks to bmu) and demands
// byte-identical responses: the backends hold replicated state, so any
// divergence is a fleet inconsistency, surfaced as 502 rather than papered
// over.
func (rt *Router) broadcast(method, path string, body []byte) (int, http.Header, []byte, *httpError) {
	up := rt.upIDs()
	if len(up) == 0 {
		return 0, nil, nil, rt.errNoBackends()
	}
	type reply struct {
		id     string
		status int
		hdr    http.Header
		body   []byte
	}
	replies := make([]reply, len(up))
	var wg sync.WaitGroup
	for i, id := range up {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			st, hdr, b := rt.send(id, method, path, body)
			replies[i] = reply{id: id, status: st, hdr: hdr, body: b}
		}(i, id)
	}
	wg.Wait()

	first := -1
	for i, rp := range replies {
		if rp.status == 0 {
			// Died mid-broadcast: the journal replay at rejoin restores it.
			continue
		}
		if first < 0 {
			first = i
			continue
		}
		f := replies[first]
		if rp.status != f.status || !bytes.Equal(rp.body, f.body) {
			rt.inconsistent.Add(1)
			return 0, nil, nil, &httpError{status: http.StatusBadGateway,
				detail: ErrorDetail{Code: "fleet_inconsistent",
					Message: fmt.Sprintf("backends %s and %s disagree on %s %s (%d vs %d)",
						f.id, rp.id, method, path, f.status, rp.status)}}
		}
	}
	if first < 0 {
		return 0, nil, nil, rt.errNoBackends()
	}
	return replies[first].status, replies[first].hdr, replies[first].body, nil
}

func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	rt.bmu.Lock()
	defer rt.bmu.Unlock()

	status, hdr, resp, he := rt.broadcast(http.MethodPost, "/sessions", body)
	if he != nil {
		writeError(w, he)
		return
	}
	// Journal every create, including failed ones: a rejected create still
	// consumed a session-ID counter slot on the live backends, and replay
	// must reproduce that on a restarted one.
	rt.mu.Lock()
	rt.journal = append(rt.journal, routerJournalEntry{method: http.MethodPost, path: "/sessions", body: body})
	rt.mu.Unlock()

	if status == http.StatusCreated {
		var info SessionInfo
		if err := json.Unmarshal(resp, &info); err == nil && info.ID != "" {
			loops := make([]string, 0, len(info.HotLoops))
			for _, l := range info.HotLoops {
				loops = append(loops, l.Name)
			}
			rt.mu.Lock()
			rt.sessions[info.ID] = loops
			rt.mu.Unlock()
		}
	}
	rt.relay(w, "", status, hdr, resp)
}

func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("id")
	path := "/sessions/" + sid
	rt.bmu.Lock()
	defer rt.bmu.Unlock()

	status, hdr, resp, he := rt.broadcast(http.MethodDelete, path, nil)
	if he != nil {
		writeError(w, he)
		return
	}
	rt.mu.Lock()
	rt.journal = append(rt.journal, routerJournalEntry{method: http.MethodDelete, path: path})
	delete(rt.sessions, sid)
	rt.mu.Unlock()
	rt.relay(w, "", status, hdr, resp)
}

// ---- reads: sharded ----

func (rt *Router) handleReadAny(w http.ResponseWriter, r *http.Request) {
	up := rt.upIDs()
	if len(up) == 0 {
		writeError(w, rt.errNoBackends())
		return
	}
	id := up[rt.rrNext.Add(1)%uint64(len(up))]
	st, hdr, body := rt.send(id, r.Method, r.URL.Path, nil)
	rt.relay(w, id, st, hdr, body)
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("id")
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	g := rt.beginRead()
	defer g.wg.Done()
	var req QueryRequest
	// Lenient decode for the routing key only; the backend enforces the
	// strict schema and produces the deterministic error if it is bad.
	_ = json.Unmarshal(body, &req)
	id, he := rt.pick("q|" + sid + "|" + req.Scheme + "|" + req.Loop + "|" + req.I1 + "|" + req.I2 + "|" + req.Rel)
	if he != nil {
		writeError(w, he)
		return
	}
	st, hdr, resp := rt.send(id, http.MethodPost, r.URL.Path, body)
	rt.relay(w, id, st, hdr, resp)
}

func (rt *Router) handleMutation(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("id")
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	g := rt.beginRead()
	defer g.wg.Done()
	id, he := rt.owner(sid)
	if he != nil {
		writeError(w, he)
		return
	}
	st, hdr, resp := rt.send(id, http.MethodPost, r.URL.Path, body)
	rt.relay(w, id, st, hdr, resp)
}

// routerAnalyzeResponse mirrors AnalyzeResponse with the per-loop results
// kept as raw bytes, so a merged fan-out response serializes exactly as a
// single backend's batch response would (the splice never re-marshals a
// loop result).
type routerAnalyzeResponse struct {
	Session        string            `json:"session"`
	Scheme         string            `json:"scheme"`
	Results        []json.RawMessage `json:"results"`
	DeadlineMisses int64             `json:"deadline_misses,omitempty"`
	CoalesceHits   int64             `json:"coalesce_hits,omitempty"`
}

// handleAnalyze fans a batch request out loop-by-loop across the fleet
// and splices the results back in request order.
func (rt *Router) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("id")
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	g := rt.beginRead()
	defer g.wg.Done()
	var req AnalyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		// Forward undecodable bodies to one backend for its strict,
		// deterministic 400.
		id, he := rt.pickHash("s|" + sid)
		if he != nil {
			writeError(w, he)
			return
		}
		st, hdr, resp := rt.send(id, http.MethodPost, r.URL.Path, body)
		rt.relay(w, id, st, hdr, resp)
		return
	}

	loops := req.Loops
	if len(loops) == 0 {
		rt.mu.Lock()
		loops = append([]string(nil), rt.sessions[sid]...)
		rt.mu.Unlock()
	}
	if len(loops) == 0 {
		// Unknown session or a session with no hot loops: one backend
		// produces the deterministic answer (404, or an empty batch).
		id, he := rt.pickHash("s|" + sid)
		if he != nil {
			writeError(w, he)
			return
		}
		st, hdr, resp := rt.send(id, http.MethodPost, r.URL.Path, body)
		rt.relay(w, id, st, hdr, resp)
		return
	}

	// Place every loop first; a down shard refuses the whole batch before
	// any backend spends work on it.
	targets := make([]string, len(loops))
	for i, loop := range loops {
		id, he := rt.pick("a|" + sid + "|" + req.Scheme + "|" + loop)
		if he != nil {
			writeError(w, he)
			return
		}
		targets[i] = id
	}
	rt.fanouts.Add(1)

	type part struct {
		id     string
		status int
		hdr    http.Header
		body   []byte
	}
	parts := make([]part, len(loops))
	var wg sync.WaitGroup
	for i := range loops {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, _ := json.Marshal(AnalyzeRequest{
				Scheme: req.Scheme, Loops: loops[i : i+1], DeadlineMS: req.DeadlineMS,
			})
			st, hdr, b := rt.send(targets[i], http.MethodPost, r.URL.Path, sub)
			parts[i] = part{id: targets[i], status: st, hdr: hdr, body: b}
		}(i)
	}
	wg.Wait()

	merged := routerAnalyzeResponse{}
	for _, p := range parts {
		if p.status != http.StatusOK {
			// Relay the first failure verbatim (deterministic 4xx from the
			// backend, or our 503 for one that died mid-request).
			rt.relay(w, p.id, p.status, p.hdr, p.body)
			return
		}
		var sub routerAnalyzeResponse
		if err := json.Unmarshal(p.body, &sub); err != nil || len(sub.Results) != 1 {
			writeError(w, &httpError{status: http.StatusBadGateway,
				detail: ErrorDetail{Code: "fleet_inconsistent",
					Message: fmt.Sprintf("backend %s returned a malformed loop result", p.id)}})
			return
		}
		merged.Session = sub.Session
		merged.Scheme = sub.Scheme
		merged.Results = append(merged.Results, sub.Results[0])
		merged.DeadlineMisses += sub.DeadlineMisses
		merged.CoalesceHits += sub.CoalesceHits
	}
	writeJSON(w, http.StatusOK, merged)
}

// ---- aggregate endpoints ----

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := RouterHealth{Backends: map[string]string{}}
	upCount := 0
	rt.mu.Lock()
	members := append([]string(nil), rt.ids...)
	rt.mu.Unlock()
	for _, id := range members {
		if rt.isDown(id) {
			h.Backends[id] = "down"
			continue
		}
		if st, _, _ := rt.send(id, http.MethodGet, "/healthz", nil); st == http.StatusOK {
			h.Backends[id] = "ok"
			upCount++
		} else {
			h.Backends[id] = "down"
		}
	}
	rt.mu.Lock()
	h.Sessions = len(rt.sessions)
	rt.mu.Unlock()
	switch {
	case upCount == len(members):
		h.Status = "ok"
	case upCount > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
	}
	status := http.StatusOK
	if upCount == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := RouterMetrics{Backends: map[string]json.RawMessage{}}
	for _, id := range rt.upIDs() {
		if st, _, body := rt.send(id, http.MethodGet, "/metrics", nil); st == http.StatusOK {
			m.Backends[id] = json.RawMessage(body)
		}
	}
	rt.mu.Lock()
	var downIDs []string
	for _, id := range rt.ids {
		if rt.down[id] {
			downIDs = append(downIDs, id)
		}
	}
	members := append([]string(nil), rt.ids...)
	pending := rt.moveID
	var probes map[string]ProbeInfo
	if len(rt.probe) > 0 {
		probes = make(map[string]ProbeInfo, len(rt.probe))
		now := time.Now()
		for id, st := range rt.probe {
			probes[id] = ProbeInfo{
				Failures:  st.fails,
				BackoffMS: rt.backoffDelay(id, st.fails).Milliseconds(),
				NextInMS:  max(st.next.Sub(now).Milliseconds(), 0),
			}
		}
	}
	sessions := len(rt.sessions)
	rt.mu.Unlock()
	m.Router = RouterCounters{
		Proxied:      rt.proxied.Load(),
		Fanouts:      rt.fanouts.Load(),
		Refused:      rt.refused.Load(),
		Inconsistent: rt.inconsistent.Load(),
		Rejoins:      rt.rejoins.Load(),
		Joins:        rt.joins.Load(),
		Leaves:       rt.leaves.Load(),
		Rollbacks:    rt.rollbacks.Load(),
		Moved503:     rt.moved503.Load(),
		Sessions:     sessions,
		Route:        rt.cfg.Route,
		Members:      members,
		Pending:      pending,
		Down:         downIDs,
		Probes:       probes,
	}
	writeJSON(w, http.StatusOK, m)
}

// ---- rejoin ----

// Probe re-checks every down backend and rejoins the ones that answer:
// a restarted (empty) backend gets the session journal replayed — the
// same mutations in the same order rebuild the same session IDs — and its
// quarantine state re-synchronized from a live peer; a backend that was
// only unreachable (state intact) is simply marked up. A backend whose
// session registry matches neither is left down: its state cannot be
// reconciled without operator intervention.
func (rt *Router) Probe() {
	rt.probeDue(time.Time{})
}

func (rt *Router) tryRejoin(id string) {
	// Serialize against mutations: the journal must not grow mid-replay.
	rt.bmu.Lock()
	defer rt.bmu.Unlock()

	if st, _, _ := rt.probeSend(id, http.MethodGet, "/healthz", nil); st != http.StatusOK {
		return
	}
	st, _, body := rt.probeSend(id, http.MethodGet, "/sessions", nil)
	if st != http.StatusOK {
		return
	}
	var have []SessionInfo
	if err := json.Unmarshal(body, &have); err != nil {
		return
	}

	rt.mu.Lock()
	want := make(map[string]bool, len(rt.sessions))
	for sid := range rt.sessions {
		want[sid] = true
	}
	journal := append([]routerJournalEntry(nil), rt.journal...)
	rt.mu.Unlock()

	switch {
	case len(have) == 0 && len(journal) > 0:
		// Fresh restart: replay the journal to rebuild the registry with
		// the same session-ID sequence.
		for _, e := range journal {
			if st, _, _ := rt.probeSend(id, e.method, e.path, e.body); st == 0 {
				return // died again mid-replay; next probe retries from scratch
			}
		}
		if !rt.syncQuarantine(id, want) {
			return
		}
	case matchesSessionSet(have, want):
		// Transient unreachability: state intact, nothing to replay.
	default:
		return
	}

	rt.mu.Lock()
	delete(rt.down, id)
	rt.mu.Unlock()
	rt.rejoins.Add(1)
	// Best effort: teach the rejoined backend the current membership —
	// it may have been away across a join or leave and its cache tier's
	// peer set would otherwise still reflect the old fleet.
	rt.pushMembers(id)
}

// pushMembers sends the full membership map to one backend's cache-tier
// membership endpoint. Best effort: a backend running without the fleet
// tier answers 404, and peer-set drift costs warmth, never correctness.
func (rt *Router) pushMembers(id string) {
	rt.mu.Lock()
	req := fleet.MembersRequest{Add: make(map[string]string, len(rt.base))}
	for mid, u := range rt.base {
		req.Add[mid] = u
	}
	rt.mu.Unlock()
	b, _ := json.Marshal(req)
	rt.probeSend(id, http.MethodPost, "/fleet/members", b)
}

func matchesSessionSet(have []SessionInfo, want map[string]bool) bool {
	if len(have) != len(want) {
		return false
	}
	for _, info := range have {
		if !want[info.ID] {
			return false
		}
	}
	return true
}

// syncQuarantine replays quarantine state onto a rejoined or joining
// backend, merged across every live peer's /metrics: quarantine is
// monotone, so the union over peers is always a safe target state, and
// merging protects the sync against one peer that itself missed a
// broadcast. Every quarantined assertion and module of every session is
// re-reported through the normal observe path, which is monotone and
// idempotent. This covers events from any origin (observe reports,
// misspeculating executions, module panics) that fired while the
// backend was away. At least one peer must answer; peers that do not
// are skipped (their state is a subset of the union by monotonicity or
// they are dying, and a dying peer must not block recovery).
func (rt *Router) syncQuarantine(id string, sessions map[string]bool) bool {
	up := rt.upIDs()
	if len(up) == 0 {
		return true // nobody to sync from; the empty fleet has no quarantine
	}
	perSession := map[string][]*recovery.Snapshot{}
	answered := 0
	for _, peer := range up {
		st, _, body := rt.probeSend(peer, http.MethodGet, "/metrics", nil)
		if st != http.StatusOK {
			continue
		}
		var m MetricsResponse
		if err := json.Unmarshal(body, &m); err != nil {
			continue
		}
		answered++
		for sid, sm := range m.Sessions {
			if !sessions[sid] || sm.Quarantine == nil {
				continue
			}
			perSession[sid] = append(perSession[sid], sm.Quarantine)
		}
	}
	if answered == 0 {
		return false
	}
	for sid, snaps := range perSession {
		merged := recovery.MergeSnapshots(snaps...)
		if len(merged.Asserts) == 0 && len(merged.Modules) == 0 {
			continue
		}
		req := ObserveRequest{Modules: merged.Modules}
		for _, k := range merged.Asserts {
			req.Violations = append(req.Violations, WireViolation{
				Assertion: k, Detail: "fleet: rejoin sync"})
		}
		b, _ := json.Marshal(req)
		if st, _, _ := rt.probeSend(id, http.MethodPost, "/sessions/"+sid+"/observe", b); st != http.StatusOK {
			return false
		}
	}
	return true
}

// probeSend is send without the down-marking side effect: probe and
// replay traffic to a backend that is already down must not churn state.
func (rt *Router) probeSend(id, method, path string, body []byte) (int, http.Header, []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, rt.baseURL(id)+path, rd)
	if err != nil {
		return 0, nil, nil
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return 0, nil, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
	if err != nil {
		return 0, nil, nil
	}
	return resp.StatusCode, resp.Header, raw
}
