package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaf"
	"scaf/internal/core"
	"scaf/internal/recovery"
)

// indirectSource's inner loop stores through a profiled index load —
// a dependence no module proves away, so the orchestrator consults the
// whole ensemble (including appended fault injectors) instead of bailing
// at an early definite answer.
const indirectSource = `
int a[64];
int idx[64];

int main() {
  int t = 0;
  for (int r = 0; r < 40; r = r + 1) {
    for (int i = 0; i < 64; i = i + 1) {
      a[idx[i]] = a[i] + 1;
      t = t + a[i];
    }
  }
  return t;
}
`

// harvestAsserts collects every distinct assertion key supporting any
// served option, sorted.
func harvestAsserts(ar AnalyzeResponse) []string {
	seen := map[string]bool{}
	var keys []string
	for _, r := range ar.Results {
		for _, q := range r.Queries {
			for _, o := range q.Options {
				for _, a := range o.Asserts {
					if !seen[a] {
						seen[a] = true
						keys = append(keys, a)
					}
				}
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// analyzeJSON runs one deadline-free scaf analyze and returns the
// results' canonical bytes.
func analyzeJSON(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	status, raw := do(t, ts, "POST", "/sessions/"+id+"/analyze", AnalyzeRequest{Scheme: "scaf"})
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d, body %s", status, raw)
	}
	ar := decode[AnalyzeResponse](t, raw)
	b, err := json.Marshal(ar.Results)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// excludedRefs computes the cold-run reference with keys quarantined, via
// the serial library path and the pdg.ParallelClient path (with a
// revoker-attached SharedCache), and requires the two to agree. What it
// returns is the recovery guarantee's right-hand side: the bytes a fresh
// analysis that never speculated on those assertions would serve.
func excludedRefs(t *testing.T, src string, keys []string, modules []string) []byte {
	t.Helper()
	sys, err := scaf.Load("small", src, scaf.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	q := recovery.New()
	for _, k := range keys {
		q.AddAssert(k, "ref")
	}
	for _, m := range modules {
		q.AddModule(m, "ref")
	}

	client := sys.Client()
	o := sys.Orchestrator(scaf.SchemeSCAF, scaf.WithModuleWrapper(recovery.Wrapper(q)))
	var serial []WireLoopResult
	for _, l := range sys.HotLoops() {
		serial = append(serial, EncodeLoopResult(client.AnalyzeLoop(o, l)))
	}
	serialJSON, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}

	sc := core.NewSharedCache()
	sc.SetRevoker(q)
	pc := sys.ParallelClient(4, scaf.SchemeSCAF,
		scaf.WithSharedCache(sc), scaf.WithModuleWrapper(recovery.Wrapper(q)))
	pres, _ := pc.AnalyzeLoops(sys.HotLoops())
	var par []WireLoopResult
	for _, r := range pres {
		par = append(par, EncodeLoopResult(r))
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON, parJSON) {
		t.Fatalf("serial and parallel excluded-assertion references diverge:\nserial   %.400s\nparallel %.400s",
			serialJSON, parJSON)
	}
	return serialJSON
}

// TestObserveRecoveryEquivalence is the misspeculation-recovery
// guarantee, end to end: after POST /observe reports violated
// assertions, the session's answers are byte-identical to a cold
// analysis run that had those assertions excluded from the start — on
// both the serial and the pdg.ParallelClient reference paths.
func TestObserveRecoveryEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})

	status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d, body %s", status, raw)
	}
	before := decode[AnalyzeResponse](t, raw)
	keys := harvestAsserts(before)
	if len(keys) == 0 {
		t.Fatal("vacuous test: no served answer was predicated on an assertion")
	}

	wantJSON := excludedRefs(t, smallSource, keys, nil)

	// Report every predicating assertion as violated.
	var vs []WireViolation
	for _, k := range keys {
		vs = append(vs, WireViolation{Assertion: k, Detail: "observed in production"})
	}
	status, raw = do(t, ts, "POST", "/sessions/"+info.ID+"/observe", ObserveRequest{Violations: vs})
	if status != http.StatusOK {
		t.Fatalf("observe: status %d, body %s", status, raw)
	}
	or := decode[ObserveResponse](t, raw)
	if or.NewAsserts != len(keys) {
		t.Fatalf("new_asserts = %d, want %d", or.NewAsserts, len(keys))
	}
	if or.Invalidated == 0 {
		t.Fatalf("nothing invalidated, yet the pre-observe answers were predicated on %v", keys)
	}
	if or.Reresolved != or.Invalidated {
		t.Fatalf("reresolved %d of %d invalidated queries", or.Reresolved, or.Invalidated)
	}
	if len(or.Quarantine.Asserts) != len(keys) {
		t.Fatalf("quarantine asserts = %v, want %v", or.Quarantine.Asserts, keys)
	}

	// Post-recovery serving: the re-resolved warm pass and a second pass
	// must both serve the cold excluded-assertion bytes, and never
	// re-offer a quarantined assertion.
	for pass := 0; pass < 2; pass++ {
		status, raw = do(t, ts, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
		if status != http.StatusOK {
			t.Fatalf("post-observe analyze pass %d: status %d", pass, status)
		}
		after := decode[AnalyzeResponse](t, raw)
		gotJSON, _ := json.Marshal(after.Results)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("pass %d: recovered answers differ from the cold excluded-assertion run\ngot  %.600s\nwant %.600s",
				pass, gotJSON, wantJSON)
		}
		quarantined := map[string]bool{}
		for _, k := range keys {
			quarantined[k] = true
		}
		for _, k := range harvestAsserts(after) {
			if quarantined[k] {
				t.Fatalf("pass %d: quarantined assertion %q re-offered", pass, k)
			}
		}
	}

	// Re-reporting a quarantined assertion is flakiness, not new state.
	status, raw = do(t, ts, "POST", "/sessions/"+info.ID+"/observe", ObserveRequest{Violations: vs[:1]})
	if status != http.StatusOK {
		t.Fatalf("repeat observe: status %d", status)
	}
	or2 := decode[ObserveResponse](t, raw)
	if or2.NewAsserts != 0 || or2.Invalidated != 0 || or2.Reresolved != 0 {
		t.Fatalf("repeat observe changed state: %+v", or2)
	}
	if or2.Quarantine.Repeats == 0 {
		t.Fatalf("repeat not counted as flaky: %+v", or2.Quarantine)
	}

	// /metrics surfaces the quarantine and still reconciles.
	_, raw = do(t, ts, "GET", "/metrics", nil)
	m := decode[MetricsResponse](t, raw)
	sm, ok := m.Sessions[info.ID]
	if !ok {
		t.Fatalf("no session metrics: %s", raw)
	}
	if sm.Quarantine == nil || len(sm.Quarantine.Asserts) != len(keys) {
		t.Fatalf("metrics quarantine = %+v, want %d asserts", sm.Quarantine, len(keys))
	}
	if sm.Trace != nil && !sm.Trace.Reconciles {
		t.Fatalf("trace no longer reconciles after recovery: %+v vs %+v", sm.Trace, sm.Stats)
	}
	if m.Server.Observations < 2 {
		t.Fatalf("observations counter = %d, want >= 2", m.Server.Observations)
	}
}

// TestObserveModuleWithdrawal: withdrawing a module wholesale flushes
// every cached answer (module influence is not entry-attributable) and
// later serving matches a cold run with the module quarantined; the
// withdrawn module never contributes again.
func TestObserveModuleWithdrawal(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})

	// Warm the cache and find a module that actually predicates answers.
	status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d", status)
	}
	keys := harvestAsserts(decode[AnalyzeResponse](t, raw))
	if len(keys) == 0 {
		t.Fatal("vacuous test: no assertion-predicated answers")
	}
	mod := keys[0][:bytes.IndexByte([]byte(keys[0]), '/')]

	wantJSON := excludedRefs(t, smallSource, nil, []string{mod})

	status, raw = do(t, ts, "POST", "/sessions/"+info.ID+"/observe", ObserveRequest{Modules: []string{mod}})
	if status != http.StatusOK {
		t.Fatalf("observe: status %d, body %s", status, raw)
	}
	or := decode[ObserveResponse](t, raw)
	if or.NewModules != 1 {
		t.Fatalf("new_modules = %d, want 1", or.NewModules)
	}
	if or.Flushed == 0 {
		t.Fatal("module withdrawal flushed nothing from a warm cache")
	}

	for pass := 0; pass < 2; pass++ {
		got := analyzeJSON(t, ts, info.ID)
		if !bytes.Equal(got, wantJSON) {
			t.Fatalf("pass %d: answers differ from cold module-quarantined run\ngot  %.600s\nwant %.600s",
				pass, got, wantJSON)
		}
		if bytes.Contains(got, []byte(mod+"/")) {
			t.Fatalf("pass %d: withdrawn module %q still predicates answers", pass, mod)
		}
	}
}

// TestObserveErrors covers the endpoint's failure modes.
func TestObserveErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})

	if status, _ := do(t, ts, "POST", "/sessions/nope/observe", ObserveRequest{}); status != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", status)
	}
	if status, _ := do(t, ts, "POST", "/sessions/"+info.ID+"/observe", ObserveRequest{}); status != http.StatusBadRequest {
		t.Errorf("empty report: status %d, want 400", status)
	}
	if status, _ := do(t, ts, "POST", "/sessions/"+info.ID+"/observe",
		ObserveRequest{Violations: []WireViolation{{Assertion: ""}}}); status != http.StatusBadRequest {
		t.Errorf("empty assertion: status %d, want 400", status)
	}
	if status, _ := do(t, ts, "POST", "/sessions/"+info.ID+"/observe",
		ObserveRequest{Modules: []string{""}}); status != http.StatusBadRequest {
		t.Errorf("empty module: status %d, want 400", status)
	}
}

// panicModule panics on every consult once armed — the "module starts
// crashing in production" scenario.
type panicModule struct {
	core.BaseModule
	armed *atomic.Bool
}

func (p *panicModule) Name() string          { return "test-panic" }
func (p *panicModule) Kind() core.ModuleKind { return core.Speculation }

func (p *panicModule) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	if p.armed.Load() {
		panic("test-panic: injected alias failure")
	}
	return core.MayAliasResponse()
}

func (p *panicModule) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if p.armed.Load() {
		panic("test-panic: injected modref failure")
	}
	return core.ModRefConservative()
}

// TestModulePanicNeverKillsDaemon arms a crashing module mid-traffic:
// the daemon must keep serving 200s, auto-quarantine the module, count
// the panics, and — once the module is out — serve the exact bytes it
// served before the module went bad.
func TestModulePanicNeverKillsDaemon(t *testing.T) {
	armed := &atomic.Bool{}
	_, ts := newTestServer(t, Config{
		ExtraModules: func() []core.Module { return []core.Module{&panicModule{armed: armed}} },
	})
	info := createSession(t, ts, CreateSessionRequest{Name: "indirect", Source: indirectSource, Plan: "off"})

	// Healthy phase: the extra module answers conservatively, contributing
	// nothing.
	healthy := analyzeJSON(t, ts, info.ID)

	// The module starts crashing. Hit a scheme whose cache is still cold,
	// so the request actually consults modules rather than replaying warm
	// cache entries. It may carry degraded (conservative) answers for the
	// queries that hit the panic — but it must complete with 200, and the
	// panic must quarantine the module.
	armed.Store(true)
	status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "confluence"})
	if status != http.StatusOK {
		t.Fatalf("analyze during module failure: status %d, body %s", status, raw)
	}

	// Quarantined now: the module is never consulted again, caches were
	// flushed, and answers return to the healthy bytes.
	got := analyzeJSON(t, ts, info.ID)
	if !bytes.Equal(got, healthy) {
		t.Fatalf("answers after module quarantine differ from healthy answers\ngot  %.600s\nwant %.600s",
			got, healthy)
	}

	_, raw = do(t, ts, "GET", "/metrics", nil)
	m := decode[MetricsResponse](t, raw)
	sm := m.Sessions[info.ID]
	if sm.Stats.ModulePanics == 0 {
		t.Fatal("module panic not counted")
	}
	if sm.Quarantine == nil || len(sm.Quarantine.Modules) != 1 || sm.Quarantine.Modules[0] != "test-panic" {
		t.Fatalf("module not quarantined: %+v", sm.Quarantine)
	}
	if sm.Trace != nil && !sm.Trace.Reconciles {
		t.Fatalf("trace does not reconcile after module panics: %+v vs %+v", sm.Trace, sm.Stats)
	}
	if status, _ := do(t, ts, "GET", "/healthz", nil); status != http.StatusOK {
		t.Fatalf("daemon unhealthy after module failure: status %d", status)
	}
}

// TestHandlerPanicIsolation: a panicking HTTP handler becomes a 500 JSON
// error plus a server_panics increment; http.ErrAbortHandler passes
// through untouched.
func TestHandlerPanicIsolation(t *testing.T) {
	srv := New(Config{})
	h := srv.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %s)", resp.StatusCode, raw)
	}
	e := decode[ErrorResponse](t, raw)
	if e.Error.Code != "internal_panic" || e.Error.Message != "handler exploded" {
		t.Fatalf("error detail = %+v", e.Error)
	}
	if srv.serverPanics.Load() != 1 {
		t.Fatalf("server_panics = %d, want 1", srv.serverPanics.Load())
	}

	// ErrAbortHandler is net/http's sanctioned abort, not a fault.
	aborting := srv.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Fatal("ErrAbortHandler swallowed by recovery middleware")
			}
		}()
		aborting.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}()
	if srv.serverPanics.Load() != 1 {
		t.Fatalf("ErrAbortHandler counted as a server panic")
	}

	// End to end through Handler(): the full stack keeps serving after a
	// handler panic, and the drain accounting stays balanced.
	full := httptest.NewServer(srv.Handler())
	defer full.Close()
	srv.mux.HandleFunc("GET /explode", func(w http.ResponseWriter, r *http.Request) {
		panic("route exploded")
	})
	resp, err = full.Client().Get(full.URL + "/explode")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("full-stack panic: status %d, want 500", resp.StatusCode)
	}
	if resp, err = full.Client().Get(full.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after handler panic: %d", resp.StatusCode)
	}
	srv.mu.Lock()
	inflight := srv.inflight
	srv.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("drain accounting leaked %d in-flight requests across a panic", inflight)
	}
}

// TestNewHTTPServerHardening: the production wrapper sets the slow-client
// timeouts, leaves writes unbounded, and still drains in-flight work on
// Shutdown.
func TestNewHTTPServerHardening(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	hs := NewHTTPServer("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("slow-client timeouts unset: %+v", hs)
	}
	if hs.WriteTimeout != 0 {
		t.Fatalf("WriteTimeout %v would cut off long analyses", hs.WriteTimeout)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = hs.Serve(ln) }()

	got := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			got <- -1
			return
		}
		resp.Body.Close()
		got <- resp.StatusCode
	}()
	<-started

	// Shutdown must wait for the in-flight request, then complete it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- hs.Shutdown(ctx) }()
	select {
	case <-done:
		t.Fatal("Shutdown returned while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	if status := <-got; status != http.StatusOK {
		t.Fatalf("in-flight request during drain got %d, want 200", status)
	}
}

// TestChaosRecoveryStress exercises quarantine, invalidation, and
// re-resolution concurrently with serving traffic under -race: a chaos
// module lies and stalls, a crashing module is armed mid-traffic, a
// recovery goroutine observes every lie it sees — and once both faulty
// modules are withdrawn, the daemon serves the exact bytes of a fault-free
// library run.
func TestChaosRecoveryStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short")
	}
	chaos := &recovery.Chaos{Seed: 42, WrongEvery: 3, DelayEvery: 7, Delay: 50 * time.Microsecond}
	armed := &atomic.Bool{}
	_, ts := newTestServer(t, Config{
		Workers:  8,
		MaxQueue: 4096,
		ExtraModules: func() []core.Module {
			return []core.Module{chaos, &panicModule{armed: armed}}
		},
	})
	info := createSession(t, ts, CreateSessionRequest{Name: "indirect", Source: indirectSource, Plan: "off"})
	loop := info.HotLoops[0].Name

	// Seed query pairs from one batch.
	status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze", AnalyzeRequest{Scheme: "scaf"})
	if status != http.StatusOK {
		t.Fatalf("seed analyze: status %d", status)
	}
	seed := decode[AnalyzeResponse](t, raw)
	queries := seed.Results[0].Queries
	if len(queries) == 0 {
		t.Fatal("no queries to replay")
	}

	// post is do() without t.Fatal, safe from worker goroutines.
	post := func(path string, body any) (int, []byte, error) {
		b, _ := json.Marshal(body)
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp.StatusCode, out, err
	}

	const workers, iters = 8, 30
	lies := make(chan string, 1024)
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if w == 0 && i == iters/2 {
					armed.Store(true) // kill a module mid-traffic
				}
				var status int
				var body []byte
				var err error
				if i%5 == 4 {
					status, body, err = post("/sessions/"+info.ID+"/analyze",
						AnalyzeRequest{Scheme: "scaf", Loops: []string{loop}})
				} else {
					q := queries[(w*31+i)%len(queries)]
					status, body, err = post("/sessions/"+info.ID+"/query",
						QueryRequest{Scheme: "scaf", Loop: loop, I1: q.I1, I2: q.I2, Rel: q.Rel})
				}
				if err != nil || status != http.StatusOK {
					fail("worker %d iter %d: status %d err %v body %.200s", w, i, status, err, body)
					return
				}
				// Surface every chaos lie for the recovery goroutine.
				var probe struct {
					Query   *WireQuery       `json:"query"`
					Results []WireLoopResult `json:"results"`
				}
				_ = json.Unmarshal(body, &probe)
				var qs []WireQuery
				if probe.Query != nil {
					qs = append(qs, *probe.Query)
				}
				for _, r := range probe.Results {
					qs = append(qs, r.Queries...)
				}
				for _, q := range qs {
					for _, o := range q.Options {
						for _, a := range o.Asserts {
							if len(a) > 6 && a[:6] == recovery.NameChaos+"/" {
								select {
								case lies <- a:
								default:
								}
							}
						}
					}
				}
			}
		}()
	}

	// Recovery goroutine: quarantine each chaos lie as it surfaces.
	stopRecover := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		seen := map[string]bool{}
		for {
			select {
			case a := <-lies:
				if seen[a] {
					continue
				}
				seen[a] = true
				status, body, err := post("/sessions/"+info.ID+"/observe",
					ObserveRequest{Violations: []WireViolation{{Assertion: a, Detail: "stress"}}})
				if err != nil || status != http.StatusOK {
					fail("observe %s: status %d err %v body %.200s", a, status, err, body)
				}
			case <-stopRecover:
				return
			}
		}
	}()

	wg.Wait()
	close(stopRecover)
	rwg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d requests failed under chaos", failures.Load())
	}

	// Withdraw both faulty modules, then the daemon must serve the exact
	// bytes of a fault-free library run: recovery leaves no residue.
	status, raw = do(t, ts, "POST", "/sessions/"+info.ID+"/observe",
		ObserveRequest{Modules: []string{recovery.NameChaos, "test-panic"}})
	if status != http.StatusOK {
		t.Fatalf("module withdrawal: status %d, body %s", status, raw)
	}

	sys, err := scaf.Load("indirect", indirectSource, scaf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := sys.Orchestrator(scaf.SchemeSCAF)
	client := sys.Client()
	var clean []WireLoopResult
	for _, l := range sys.HotLoops() {
		clean = append(clean, EncodeLoopResult(client.AnalyzeLoop(o, l)))
	}
	wantJSON, _ := json.Marshal(clean)
	for pass := 0; pass < 2; pass++ {
		got := analyzeJSON(t, ts, info.ID)
		if !bytes.Equal(got, wantJSON) {
			t.Fatalf("pass %d: answers after withdrawing the fault injectors differ from a fault-free run\ngot  %.600s\nwant %.600s",
				pass, got, wantJSON)
		}
	}

	_, raw = do(t, ts, "GET", "/metrics", nil)
	m := decode[MetricsResponse](t, raw)
	sm := m.Sessions[info.ID]
	if sm.Quarantine == nil || len(sm.Quarantine.Modules) == 0 {
		t.Fatalf("quarantine state missing after stress: %+v", sm.Quarantine)
	}
	if sm.Trace != nil && !sm.Trace.Reconciles {
		t.Fatalf("trace does not reconcile after chaos: %+v vs %+v", sm.Trace, sm.Stats)
	}
}
