package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"scaf/internal/fleet"
	"scaf/internal/persist"
)

// Live fleet elasticity: the router can grow and shrink the backend set
// while serving traffic. A membership change is a per-segment cutover
// state machine — pending → streaming → draining → owned — built so the
// only client-visible effect of a planned move is a bounded, retryable
// 503 on the segments that are moving:
//
//   - pending: the newcomer is registered but excluded from broadcasts
//     and placement; it is caught up like a rejoining backend (journal
//     replay rebuilds the same session IDs in the same order, quarantine
//     is re-synced as the union over live peers).
//   - streaming: each current owner exports the cache segment the
//     newcomer will own under the next ring, through the persist codec,
//     so the transfer inherits the corruption-to-miss ladder — a torn
//     stream yields a cold segment, never a wrong entry.
//   - draining: mutations serialize behind the broadcast lock, a segment
//     fence refuses reads whose owner changes between the rings (503 +
//     Retry-After), and the read generation in flight under the old
//     placement is drained to completion.
//   - owned: the ring flips; no request was ever answered by two owners.
//
// Any failure that cannot be attributed and repaired rolls the move back
// to the old owners: membership is unchanged, the newcomer's registration
// is dropped, and the fence comes down. Leave is the dual, with one
// asymmetry: a leaver that is already dead is removed without streaming —
// dead-member removal is the permanent-loss recovery path and must never
// wedge on the corpse.

// JoinRequest admits one backend into the fleet.
type JoinRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// LeaveRequest removes one backend from the fleet.
type LeaveRequest struct {
	ID string `json:"id"`
}

// MoveReport is the admin-visible outcome of a completed join or leave.
type MoveReport struct {
	Op              string         `json:"op"`
	ID              string         `json:"id"`
	JournalReplayed int            `json:"journal_replayed"`
	Segments        map[string]int `json:"segments,omitempty"` // counterpart -> entries restored
	EntriesInserted int            `json:"entries_inserted"`
	EntriesRejected int            `json:"entries_rejected"`
	OwnersSkipped   int            `json:"owners_skipped,omitempty"`
	DrainMS         int64          `json:"drain_ms"`
	Members         []string       `json:"members"`
}

func moveErr(status int, code, format string, args ...any) *httpError {
	return &httpError{status: status,
		detail: ErrorDetail{Code: code, Message: fmt.Sprintf(format, args...)}}
}

func (rt *Router) hook(op, phase, id string) {
	if rt.moveHook != nil {
		rt.moveHook(op, phase, id)
	}
}

// rollbackMove abandons an in-progress move: the fence comes down, the
// old ring keeps ownership, and a joiner that never became a member
// loses its registration. The fleet is exactly as before the request.
func (rt *Router) rollbackMove(op, id string) {
	rt.mu.Lock()
	if op == "join" {
		member := false
		for _, x := range rt.ids {
			if x == id {
				member = true
			}
		}
		if !member {
			delete(rt.base, id)
		}
	}
	rt.nextRing = nil
	rt.moveID, rt.moveOp = "", ""
	rt.mu.Unlock()
	rt.rollbacks.Add(1)
	rt.hook(op, "rolledback", id)
}

// fenceAndDrain installs the segment fence (nextRing) and swaps in a
// fresh read generation, then waits for every read admitted under the
// old placement to finish. False means the drain timed out; the waiter
// goroutine then lingers until those reads end (bounded by the backend
// request timeout), which is harmless — generations are drain barriers,
// not resources.
func (rt *Router) fenceAndDrain(next *fleet.Ring) bool {
	rt.mu.Lock()
	rt.nextRing = next
	old := rt.gen
	rt.gen = &readGen{}
	rt.mu.Unlock()
	timeout := rt.cfg.DrainTimeout
	if timeout <= 0 {
		timeout = defaultDrainTimeout
	}
	ch := make(chan struct{})
	go func() { old.wg.Wait(); close(ch) }()
	select {
	case <-ch:
		return true
	case <-time.After(timeout):
		return false
	}
}

// ---- join ----

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req JoinRequest
	if err := json.Unmarshal(body, &req); err != nil || req.ID == "" || req.URL == "" {
		writeError(w, errBadRequest("join needs a JSON body with id and url"))
		return
	}
	rt.mu.Lock()
	if rt.moveID != "" {
		op, mid := rt.moveOp, rt.moveID
		rt.mu.Unlock()
		writeError(w, moveErr(http.StatusConflict, "move_in_progress",
			"%s of %s is in progress; one membership change at a time", op, mid))
		return
	}
	if _, exists := rt.base[req.ID]; exists {
		rt.mu.Unlock()
		writeError(w, moveErr(http.StatusConflict, "already_member",
			"backend %s is already a fleet member", req.ID))
		return
	}
	rt.moveID, rt.moveOp = req.ID, "join"
	rt.base[req.ID] = req.URL
	members := append([]string(nil), rt.ids...)
	rt.mu.Unlock()

	rep, he := rt.runJoin(req.ID, members)
	if he != nil {
		rt.rollbackMove("join", req.ID)
		writeError(w, he)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (rt *Router) runJoin(id string, members []string) (*MoveReport, *httpError) {
	rt.hook("join", "pending", id)

	// The joiner must be alive, and either empty (fresh process: replay
	// the journal into it) or already holding exactly our session set (a
	// retry after a rollback later in the move). Anything else is foreign
	// state we must not own.
	if st, _, _ := rt.probeSend(id, http.MethodGet, "/healthz", nil); st != http.StatusOK {
		return nil, moveErr(http.StatusBadGateway, "join_failed", "joiner %s is unreachable", id)
	}
	st, _, body := rt.probeSend(id, http.MethodGet, "/sessions", nil)
	if st != http.StatusOK {
		return nil, moveErr(http.StatusBadGateway, "join_failed", "joiner %s cannot list sessions", id)
	}
	var have []SessionInfo
	if err := json.Unmarshal(body, &have); err != nil {
		return nil, moveErr(http.StatusBadGateway, "join_failed", "joiner %s returned a malformed session list", id)
	}

	rt.mu.Lock()
	j0 := len(rt.journal)
	journal := append([]routerJournalEntry(nil), rt.journal...)
	want := make(map[string]bool, len(rt.sessions))
	for sid := range rt.sessions {
		want[sid] = true
	}
	rt.mu.Unlock()

	rep := &MoveReport{Op: "join", ID: id, Segments: map[string]int{}}
	switch {
	case len(have) == 0:
		for _, e := range journal {
			if st, _, _ := rt.probeSend(id, e.method, e.path, e.body); st == 0 {
				return nil, moveErr(http.StatusBadGateway, "join_failed",
					"joiner %s died during journal replay", id)
			}
			rep.JournalReplayed++
		}
	case matchesSessionSet(have, want):
		// Already caught up; only the segments need (re)streaming.
	default:
		return nil, moveErr(http.StatusConflict, "joiner_state",
			"joiner %s holds sessions that are not ours; restart it empty", id)
	}
	if !rt.syncQuarantine(id, want) {
		return nil, moveErr(http.StatusBadGateway, "join_failed",
			"quarantine sync to joiner %s failed", id)
	}

	// Stream the joiner's future segments from their current owners,
	// un-fenced: traffic keeps flowing under the old placement, and
	// entries published meanwhile merely miss the transfer (warmth, not
	// correctness — the fenced phase below catches up sessions, and
	// cache keys are self-validating). An owner that cannot export is
	// tolerated (those segments start cold); a joiner that cannot
	// restore is not — that failure is unattributable, so the move rolls
	// back to the old owners.
	rt.hook("join", "streaming", id)
	newMembers := append(append([]string(nil), members...), id)
	sort.Strings(newMembers)
	newRing := fleet.NewRing(newMembers, 0)
	segReq, _ := json.Marshal(segmentRequest{Nodes: newMembers, Owner: id})
	for _, ob := range members {
		if rt.isDown(ob) {
			rep.OwnersSkipped++
			continue
		}
		st, _, seg := rt.probeSend(ob, http.MethodPost, "/fleet/segment", segReq)
		if st != http.StatusOK {
			rep.OwnersSkipped++
			continue
		}
		st, _, resp := rt.probeSend(id, http.MethodPost, "/fleet/restore", seg)
		if st != http.StatusOK {
			return nil, moveErr(http.StatusBadGateway, "join_failed",
				"joiner %s failed to restore the segment streamed from %s", id, ob)
		}
		var rr SegmentRestoreResponse
		_ = json.Unmarshal(resp, &rr)
		rep.Segments[ob] = rr.Inserted
		rep.EntriesInserted += rr.Inserted
		rep.EntriesRejected += rr.Rejected
	}

	// Fenced phase: serialize against mutations, replay the journal tail
	// that accumulated while streaming, fence the moving segments, drain
	// the in-flight reads, and only then flip ownership.
	rt.bmu.Lock()
	defer rt.bmu.Unlock()

	rt.mu.Lock()
	tail := append([]routerJournalEntry(nil), rt.journal[j0:]...)
	want = make(map[string]bool, len(rt.sessions))
	for sid := range rt.sessions {
		want[sid] = true
	}
	rt.mu.Unlock()
	for _, e := range tail {
		if st, _, _ := rt.probeSend(id, e.method, e.path, e.body); st == 0 {
			return nil, moveErr(http.StatusBadGateway, "join_failed",
				"joiner %s died during tail catch-up", id)
		}
		rep.JournalReplayed++
	}
	if len(tail) > 0 && !rt.syncQuarantine(id, want) {
		return nil, moveErr(http.StatusBadGateway, "join_failed",
			"quarantine re-sync to joiner %s failed", id)
	}

	rt.hook("join", "draining", id)
	start := time.Now()
	if !rt.fenceAndDrain(newRing) {
		return nil, moveErr(http.StatusGatewayTimeout, "drain_timeout",
			"in-flight reads did not drain; join of %s rolled back", id)
	}
	rep.DrainMS = time.Since(start).Milliseconds()

	// Last look before the point of no return: a joiner that died during
	// the drain must not be handed segments.
	if st, _, _ := rt.probeSend(id, http.MethodGet, "/healthz", nil); st != http.StatusOK {
		return nil, moveErr(http.StatusBadGateway, "join_failed",
			"joiner %s died before cutover", id)
	}

	// Teach every cache tier the full membership (including the joiner)
	// before its segments take traffic, so recovery broadcasts and peer
	// lookups reach it from the first post-flip request. Best effort.
	for _, m := range newMembers {
		rt.pushMembers(m)
	}

	rt.mu.Lock()
	rt.ids = newMembers
	rt.ring = newRing
	rt.nextRing = nil
	rt.moveID, rt.moveOp = "", ""
	rt.mu.Unlock()
	rt.joins.Add(1)
	rt.hook("join", "owned", id)
	rep.Members = newMembers
	if rt.cfg.CacheDir != "" {
		rt.savePersist()
	}
	return rep, nil
}

// ---- leave ----

func (rt *Router) handleLeave(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req LeaveRequest
	if err := json.Unmarshal(body, &req); err != nil || req.ID == "" {
		writeError(w, errBadRequest("leave needs a JSON body with id"))
		return
	}
	rt.mu.Lock()
	if rt.moveID != "" {
		op, mid := rt.moveOp, rt.moveID
		rt.mu.Unlock()
		writeError(w, moveErr(http.StatusConflict, "move_in_progress",
			"%s of %s is in progress; one membership change at a time", op, mid))
		return
	}
	member := false
	for _, x := range rt.ids {
		if x == req.ID {
			member = true
		}
	}
	if !member {
		rt.mu.Unlock()
		writeError(w, moveErr(http.StatusNotFound, "not_a_member",
			"backend %s is not a fleet member", req.ID))
		return
	}
	if len(rt.ids) == 1 {
		rt.mu.Unlock()
		writeError(w, moveErr(http.StatusConflict, "last_member",
			"refusing to remove the last backend %s", req.ID))
		return
	}
	rt.moveID, rt.moveOp = req.ID, "leave"
	var remaining []string
	for _, x := range rt.ids {
		if x != req.ID {
			remaining = append(remaining, x)
		}
	}
	rt.mu.Unlock()

	rep, he := rt.runLeave(req.ID, remaining)
	if he != nil {
		rt.rollbackMove("leave", req.ID)
		writeError(w, he)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (rt *Router) runLeave(id string, remaining []string) (*MoveReport, *httpError) {
	rt.hook("leave", "pending", id)
	newRing := fleet.NewRing(remaining, 0)
	rep := &MoveReport{Op: "leave", ID: id, Segments: map[string]int{}}

	// Stream the leaver's warm shard to its successors — unless it is
	// already dead. Removing a dead member IS the permanent-loss recovery
	// path; it must never wedge on the corpse, so its segments simply
	// start cold on the successors. Streaming failures on a live leaver
	// are tolerated for the same reason: the entries still exist nowhere
	// else after the flip, and cold is an acceptable (counted) outcome of
	// an explicit departure.
	rt.hook("leave", "streaming", id)
	alive := !rt.isDown(id)
	if alive {
		if st, _, _ := rt.probeSend(id, http.MethodGet, "/healthz", nil); st != http.StatusOK {
			alive = false
		}
	}
	if alive {
		for _, s := range remaining {
			if rt.isDown(s) {
				rep.OwnersSkipped++
				continue
			}
			segReq, _ := json.Marshal(segmentRequest{Nodes: remaining, Owner: s})
			st, _, seg := rt.probeSend(id, http.MethodPost, "/fleet/segment", segReq)
			if st != http.StatusOK {
				rep.OwnersSkipped++
				continue
			}
			st, _, resp := rt.probeSend(s, http.MethodPost, "/fleet/restore", seg)
			if st != http.StatusOK {
				rep.OwnersSkipped++
				continue
			}
			var rr SegmentRestoreResponse
			_ = json.Unmarshal(resp, &rr)
			rep.Segments[s] = rr.Inserted
			rep.EntriesInserted += rr.Inserted
			rep.EntriesRejected += rr.Rejected
		}
	} else {
		rep.OwnersSkipped = len(remaining)
	}

	// Fenced phase: mutations hold, moving segments refuse, in-flight
	// reads drain, then the leaver is gone from placement.
	rt.bmu.Lock()
	defer rt.bmu.Unlock()
	rt.hook("leave", "draining", id)
	start := time.Now()
	if !rt.fenceAndDrain(newRing) {
		return nil, moveErr(http.StatusGatewayTimeout, "drain_timeout",
			"in-flight reads did not drain; leave of %s rolled back", id)
	}
	rep.DrainMS = time.Since(start).Milliseconds()

	rt.mu.Lock()
	rt.ids = remaining
	delete(rt.base, id)
	delete(rt.down, id)
	delete(rt.probe, id)
	rt.ring = newRing
	rt.nextRing = nil
	rt.moveID, rt.moveOp = "", ""
	rt.mu.Unlock()
	rt.leaves.Add(1)
	rt.hook("leave", "owned", id)
	rep.Members = remaining

	// Drop the departed peer from the survivors' cache tiers (best
	// effort; a stale peer entry costs timeouts that the per-op budget
	// already fails open).
	rm, _ := json.Marshal(fleet.MembersRequest{Remove: []string{id}})
	for _, s := range remaining {
		rt.probeSend(s, http.MethodPost, "/fleet/members", rm)
	}
	if rt.cfg.CacheDir != "" {
		rt.savePersist()
	}
	return rep, nil
}

// ---- backend-side segment transfer ----

// segmentRequest asks a backend to export the slice of its local cache
// shard that owner will hold under the ring built from nodes.
type segmentRequest struct {
	Nodes  []string `json:"nodes"`
	VNodes int      `json:"vnodes,omitempty"`
	Owner  string   `json:"owner"`
}

// SegmentRestoreResponse reports what a segment restore accepted.
type SegmentRestoreResponse struct {
	Inserted  int  `json:"inserted"`
	Rejected  int  `json:"rejected"`
	Dropped   int  `json:"dropped,omitempty"`
	Truncated bool `json:"truncated,omitempty"`
}

// handleFleetSegment exports this backend's cache entries that owner
// will hold under the requested ring, encoded with the persist framing:
// the wire image carries the same per-record and per-entry checksums as
// a disk snapshot, so a corrupted transfer degrades to the valid prefix
// on the receiving end — cold segments, never wrong ones. The full
// revoked set rides along (it is global and monotone; Restore applies
// it before entries).
func (s *Server) handleFleetSegment(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req segmentRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Nodes) == 0 || req.Owner == "" {
		writeError(w, errBadRequest("segment export needs {nodes, owner}"))
		return
	}
	local := s.fleet.Local()
	seg := persist.Segment(persist.Snapshot{
		Revoked: local.RevokedKeys(),
		Entries: local.SnapshotEntries(),
	}, fleet.NewRing(req.Nodes, req.VNodes), req.Owner)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(persist.Encode(seg))
}

// handleFleetRestore installs a streamed segment into the local cache
// shard through the full validation ladder: persist decode (checksums,
// framing, key shape) then Restore (revocations first, canonical-entry
// checks). Anything the ladder rejects is reported, not installed.
func (s *Server) handleFleetRestore(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxPeerResponse))
	if err != nil {
		writeError(w, errBadRequest("reading segment body: %v", err))
		return
	}
	snap, ds := persist.Decode(data)
	inserted, rejected := s.fleet.Local().Restore(snap.Revoked, snap.Entries)
	writeJSON(w, http.StatusOK, SegmentRestoreResponse{
		Inserted:  inserted,
		Rejected:  rejected,
		Dropped:   ds.Dropped,
		Truncated: ds.Truncated,
	})
}
