package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// smallSource2 is a second program so the stress mix crosses sessions:
// a pointer-chasing loop over a linked list built from an arena.
const smallSource2 = `
int arena[256];
int heads[4];

int main() {
  for (int i = 0; i < 252; i = i + 1) { arena[i] = i + 4; }
  for (int h = 0; h < 4; h = h + 1) { heads[h] = h; }
  int sum = 0;
  for (int r = 0; r < 30; r = r + 1) {
    for (int i = 0; i < 200; i = i + 1) {
      int p = arena[i];
      arena[i] = p + heads[p & 3];
      sum = sum + p;
    }
  }
  return sum;
}
`

// TestServerStressRace exercises the daemon the way -race wants it
// exercised: 16 goroutines over two sessions and three schemes, mixing
// deadline-free (coalescible) batches, deadline-bounded batches, single
// queries, and metrics reads. Every deadline-free answer must equal the
// serial reference bytes regardless of interleaving.
func TestServerStressRace(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 8, MaxQueue: 1024})
	infos := []SessionInfo{
		createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}),
		createSession(t, ts, CreateSessionRequest{Name: "small2", Source: smallSource2, Plan: "off"}),
	}
	schemes := []string{"CAF", "Confluence", "SCAF"}

	// Serial reference bytes per (session, scheme), taken before any
	// concurrency starts.
	ref := map[string][]byte{}
	refQuery := map[string]WireQuery{}
	for _, info := range infos {
		for _, scheme := range schemes {
			status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
				AnalyzeRequest{Scheme: scheme})
			if status != http.StatusOK {
				t.Fatalf("reference analyze %s/%s: status %d, body %s", info.ID, scheme, status, raw)
			}
			ar := decode[AnalyzeResponse](t, raw)
			j, err := json.Marshal(ar.Results)
			if err != nil {
				t.Fatal(err)
			}
			ref[info.ID+"/"+scheme] = j
			if len(ar.Results) > 0 && len(ar.Results[0].Queries) > 0 {
				refQuery[info.ID+"/"+scheme] = ar.Results[0].Queries[0]
			}
		}
	}

	const goroutines = 16
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				info := infos[(g+i)%len(infos)]
				scheme := schemes[(g*iters+i)%len(schemes)]
				key := info.ID + "/" + scheme
				switch (g + i) % 4 {
				case 0, 1: // deadline-free batch: must match reference bytes
					status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
						AnalyzeRequest{Scheme: scheme})
					if status != http.StatusOK {
						errs <- fmt.Errorf("analyze %s: status %d (%s)", key, status, raw)
						continue
					}
					ar := decode[AnalyzeResponse](t, raw)
					j, _ := json.Marshal(ar.Results)
					if !bytes.Equal(j, ref[key]) {
						errs <- fmt.Errorf("analyze %s: answer drifted under concurrency", key)
					}
				case 2: // deadline-bounded batch: complete and well-formed
					status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
						AnalyzeRequest{Scheme: scheme, DeadlineMS: 1})
					if status != http.StatusOK {
						errs <- fmt.Errorf("deadline analyze %s: status %d (%s)", key, status, raw)
						continue
					}
					ar := decode[AnalyzeResponse](t, raw)
					if len(ar.Results) != len(info.HotLoops) {
						errs <- fmt.Errorf("deadline analyze %s: %d results, want %d",
							key, len(ar.Results), len(info.HotLoops))
					}
				case 3: // single query + metrics read
					q, ok := refQuery[key]
					if ok {
						status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/query", QueryRequest{
							Scheme: scheme, Loop: info.HotLoops[0].Name,
							I1: q.I1, I2: q.I2, Rel: q.Rel,
						})
						if status != http.StatusOK {
							errs <- fmt.Errorf("query %s: status %d (%s)", key, status, raw)
							continue
						}
						qr := decode[QueryResponse](t, raw)
						gj, _ := json.Marshal(qr.Query)
						wj, _ := json.Marshal(q)
						if !bytes.Equal(gj, wj) {
							errs <- fmt.Errorf("query %s: answer drifted under concurrency", key)
						}
					}
					if status, _ := do(t, ts, "GET", "/metrics", nil); status != http.StatusOK {
						errs <- fmt.Errorf("metrics: status %d", status)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiescent invariants: nothing queued, nothing in flight, and every
	// session's trace still reconciles exactly with its counters despite
	// all the pool churn.
	if d := srv.queued.Load(); d != 0 {
		t.Errorf("queue depth %d after quiesce", d)
	}
	srv.mu.Lock()
	inflight := srv.inflight
	srv.mu.Unlock()
	if inflight != 0 {
		t.Errorf("%d requests still tracked in flight", inflight)
	}
	status, raw := do(t, ts, "GET", "/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("final metrics: status %d", status)
	}
	m := decode[MetricsResponse](t, raw)
	for id, sm := range m.Sessions {
		if sm.Trace == nil || !sm.Trace.Reconciles {
			t.Errorf("session %s: trace does not reconcile after stress", id)
		}
		if sm.Latency == nil || sm.Latency.TotalWrk != sm.Stats.ModuleEvals {
			t.Errorf("session %s: work samples do not partition module evals", id)
		}
	}
	if m.Server.Accepted == 0 || m.Server.LoopsServed == 0 || m.Server.QueriesServed == 0 {
		t.Errorf("server counters missing traffic: %+v", m.Server)
	}
	t.Logf("stress: accepted=%d coalesce_hits=%d deadline_misses=%d loops=%d queries=%d",
		m.Server.Accepted, m.Server.CoalesceHits, m.Server.DeadlineMisses,
		m.Server.LoopsServed, m.Server.QueriesServed)
}

// TestShutdownDrainsInFlight runs Shutdown while real requests are
// executing: every accepted request must complete with 200, late
// arrivals get 503, and Shutdown returns only after the flight is empty.
func TestShutdownDrainsInFlight(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 4})
	info := createSession(t, ts, CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"})

	const inflight = 6
	statuses := make(chan int, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _ := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
				AnalyzeRequest{Scheme: "SCAF"})
			statuses <- status
		}()
	}
	time.Sleep(5 * time.Millisecond) // let some requests enter the handler

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	close(statuses)
	for status := range statuses {
		if status != http.StatusOK && status != http.StatusServiceUnavailable {
			t.Errorf("request during drain finished with %d", status)
		}
	}
	srv.mu.Lock()
	left := srv.inflight
	srv.mu.Unlock()
	if left != 0 {
		t.Fatalf("Shutdown returned with %d requests in flight", left)
	}
}
