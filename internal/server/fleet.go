package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"scaf"
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/fleet"
)

// This file joins the daemon to a fleet: it binds the session's
// per-scheme core.SharedCaches to the cross-instance tier through a
// codec, layers a whole-loop wire-bytes lookaside over /analyze, and
// fans recovery events out to (and applies them from) the other
// instances.
//
// Byte-identity across instances rests on three locks:
//
//   - only canonical entries travel (the SharedCache publication rule
//     locally, the codec's representability rules on the wire), so a
//     remote answer is the same pure function of the proposition any
//     instance computes;
//   - every fleet key is prefixed by the session's program digest and
//     quarantine fingerprint, so entries can only match between sessions
//     holding the same program in the same recovery state;
//   - recovery broadcasts are synchronous — the violating request is not
//     answered until every reachable peer has revoked — and the local
//     revoked sets stay authoritative over anything remote, so a missed
//     peer degrades hit rate, never answers.

// FleetConfig joins a server to a fleet of scaf-serve instances.
type FleetConfig struct {
	// Self is this instance's node ID (e.g. "b0").
	Self string
	// Peers maps the other instances' node IDs to base URLs.
	Peers map[string]string
	// Salt folds deployment configuration the digest cannot see (extra
	// modules, build variants) into every session digest. Instances with
	// different salts never share cache entries.
	Salt string
	// VNodes, Timeout, AutoFlush tune the tier (zeros pick fleet defaults).
	VNodes    int
	Timeout   time.Duration
	AutoFlush time.Duration
	// CacheDir, when non-empty, makes the local shard durable: the boot
	// loads the directory's snapshot (validated end-to-end — corruption
	// degrades to misses, never wrong answers), revocations are journaled
	// the moment they happen, and a graceful drain snapshots the shard
	// back, so a rolling restart starts warm.
	CacheDir string
	// SnapshotEvery, when positive, additionally snapshots the shard on
	// this period from a background goroutine — bounding how much cache
	// warmth a crash (as opposed to a drain) can cost. Zero means
	// drain-only snapshots; revocations are durable either way.
	SnapshotEvery time.Duration
}

// fleetDigest hashes everything that determines a session's answers:
// the program source, the plan mode, the client-supplied assertions, the
// hot-loop thresholds, and the deployment salt. Sessions created from the
// same request on any instance digest equal; anything that could change
// an answer changes the digest, so cross-instance hits are confined to
// genuinely identical sessions. The session name is deliberately
// excluded — it labels the session, it does not shape answers.
func fleetDigest(req *CreateSessionRequest, src, salt string) string {
	h := fnv.New64a()
	w := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	w("v1", salt, src, req.Plan)
	if len(req.Assertions) > 0 {
		b, _ := json.Marshal(req.Assertions)
		w(string(b))
	}
	if req.HotLoops != nil {
		w(fmt.Sprintf("hot|%g|%g", req.HotLoops.MinWeightFrac, req.HotLoops.MinAvgIters))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// fleetFingerprint returns the session's current quarantine fingerprint,
// cached per recovery epoch (the epoch bumps on every event, so the cache
// invalidates itself; the quarantine is monotone, so a racing recompute
// is at worst fresher than the epoch it is stored under).
func (sess *session) fleetFingerprint() string {
	e := sess.epoch.Load()
	sess.fpMu.Lock()
	defer sess.fpMu.Unlock()
	if sess.fpVal == "" || sess.fpEpoch != e {
		sess.fpVal = sess.quarantine.Fingerprint()
		sess.fpEpoch = e
	}
	return sess.fpVal
}

// fleetPrefix scopes every key of this session: program digest, scheme,
// recovery fingerprint. Two sessions producing the same prefix are
// answer-identical by construction, which is what lets the raw bytes
// under the key be served verbatim.
func (sess *session) fleetPrefix(scheme scaf.Scheme) string {
	return sess.fleetDigest + "|" + scheme.String() + "|" + sess.fleetFingerprint()
}

// fleetLoopKey keys one hot loop's whole wire result.
func (sess *session) fleetLoopKey(scheme scaf.Scheme, l *cfg.Loop) string {
	return sess.fleetPrefix(scheme) + "|loop|" + l.Name()
}

// fleetModRefKey keys one canonical top-level mod-ref proposition, or
// reports the query unrepresentable (ok=false): the codec only speaks
// instruction-pair queries in the session's hot loops under the canonical
// dominator trees and no calling context. Unrepresentable queries miss
// and are not published — partial coverage degrades hit rate, never
// answers (the core.CachePeer contract).
func (sess *session) fleetModRefKey(scheme scaf.Scheme, q *core.ModRefQuery) (string, bool) {
	if q.I1 == nil || q.I2 == nil || q.Loc.Ptr != nil || q.Ctx != nil || q.Loop == nil {
		return "", false
	}
	if sess.loops[q.Loop.Name()] != q.Loop {
		return "", false
	}
	if q.DT != sess.client.Prog.Dom[q.Loop.Fn] || q.PDT != sess.client.Prog.PostDom[q.Loop.Fn] {
		return "", false
	}
	return sess.fleetPrefix(scheme) + "|mr|" + q.Loop.Name() + "|" +
		InstrRef(q.I1) + "|" + InstrRef(q.I2) + "|" + q.Rel.String(), true
}

// fleetAssert is an assertion in fleet wire form: process-independent
// refs for every program point, exact float64 cost (Go's JSON encoding
// round-trips float64 exactly), full content including conflict points so
// the decoded assertion is String()- and key()-identical to the original.
type fleetAssert struct {
	Module    string      `json:"module"`
	Kind      string      `json:"kind,omitempty"`
	Points    []WirePoint `json:"points,omitempty"`
	Conflicts []WirePoint `json:"conflicts,omitempty"`
	Cost      float64     `json:"cost"`
}

type fleetOption struct {
	Asserts []fleetAssert `json:"asserts,omitempty"`
}

// fleetModRef is a core.ModRefResponse in fleet wire form. Option and
// assertion order are preserved exactly: wire identity of a served answer
// depends on them.
type fleetModRef struct {
	Result   int           `json:"result"`
	Options  []fleetOption `json:"options,omitempty"`
	Contribs []string      `json:"contribs,omitempty"`
}

// encodeFleetPoint renders a core.Point as a WirePoint ref; ok=false
// marks a shape the wire cannot name (making the whole response
// unrepresentable).
func encodeFleetPoint(p core.Point) (WirePoint, bool) {
	switch {
	case p.Instr != nil:
		id := p.Instr.ID
		return WirePoint{Fn: p.Instr.Blk.Fn.Name, Instr: &id}, true
	case p.Block != nil && p.EdgeTo != nil:
		return WirePoint{Fn: p.Block.Fn.Name, Block: p.Block.String(), EdgeTo: p.EdgeTo.String()}, true
	case p.Block != nil:
		return WirePoint{Fn: p.Block.Fn.Name, Block: p.Block.String()}, true
	case p.G != nil:
		return WirePoint{Global: p.G.GName}, true
	}
	return WirePoint{}, false
}

func encodeFleetPoints(ps []core.Point) ([]WirePoint, bool) {
	if len(ps) == 0 {
		return nil, true
	}
	out := make([]WirePoint, 0, len(ps))
	for _, p := range ps {
		wp, ok := encodeFleetPoint(p)
		if !ok {
			return nil, false
		}
		out = append(out, wp)
	}
	return out, true
}

// encodeFleetModRef serializes a canonical response; ok=false when some
// assertion point has no wire name.
func encodeFleetModRef(r core.ModRefResponse) ([]byte, bool) {
	w := fleetModRef{Result: int(r.Result), Contribs: r.Contribs}
	for _, o := range r.Options {
		fo := fleetOption{}
		for _, a := range o.Asserts {
			pts, ok := encodeFleetPoints(a.Points)
			if !ok {
				return nil, false
			}
			conf, ok := encodeFleetPoints(a.Conflicts)
			if !ok {
				return nil, false
			}
			fo.Asserts = append(fo.Asserts, fleetAssert{
				Module: a.Module, Kind: a.Kind, Points: pts, Conflicts: conf, Cost: a.Cost,
			})
		}
		w.Options = append(w.Options, fo)
	}
	b, err := json.Marshal(w)
	if err != nil {
		return nil, false
	}
	return b, true
}

// decodeFleetModRef reconstructs a response against this session's
// compiled module. Refs resolve to this process's ir objects, so the
// decoded response renders (EncodeQuery) byte-identically to the
// producer's. ok=false on any ref that does not resolve — a digest
// collision or version skew turns into a miss, never a wrong answer.
func (sess *session) decodeFleetModRef(b []byte) (core.ModRefResponse, bool) {
	var w fleetModRef
	if err := json.Unmarshal(b, &w); err != nil {
		return core.ModRefResponse{}, false
	}
	r := core.ModRefResponse{Result: core.ModRefResult(w.Result), Contribs: w.Contribs}
	for _, fo := range w.Options {
		o := core.Option{}
		for _, fa := range fo.Asserts {
			a := core.Assertion{Module: fa.Module, Kind: fa.Kind, Cost: fa.Cost}
			for _, wp := range fa.Points {
				p, err := ResolvePoint(sess.sys.Mod, wp)
				if err != nil {
					return core.ModRefResponse{}, false
				}
				a.Points = append(a.Points, p)
			}
			for _, wp := range fa.Conflicts {
				p, err := ResolvePoint(sess.sys.Mod, wp)
				if err != nil {
					return core.ModRefResponse{}, false
				}
				a.Conflicts = append(a.Conflicts, p)
			}
			o.Asserts = append(o.Asserts, a)
		}
		r.Options = append(r.Options, o)
	}
	return r, true
}

// fleetPeer implements core.CachePeer for one (session, scheme) pair over
// the tier. Only the mod-ref plane is spoken: top-level published entries
// in the serving path are instruction-pair mod-ref propositions (alias
// propositions arise as premises, which are never published), so the
// alias plane would add codec surface for no traffic.
type fleetPeer struct {
	sess   *session
	scheme scaf.Scheme
	tier   *fleet.Tier
}

func (p *fleetPeer) GetAlias(q *core.AliasQuery) (core.AliasResponse, bool) {
	return core.AliasResponse{}, false
}

func (p *fleetPeer) PutAlias(q *core.AliasQuery, asserts []string, r core.AliasResponse) {}

func (p *fleetPeer) GetModRef(q *core.ModRefQuery) (core.ModRefResponse, bool) {
	key, ok := p.sess.fleetModRefKey(p.scheme, q)
	if !ok {
		return core.ModRefResponse{}, false
	}
	b, ok := p.tier.Get(key)
	if !ok {
		return core.ModRefResponse{}, false
	}
	return p.sess.decodeFleetModRef(b)
}

func (p *fleetPeer) PutModRef(q *core.ModRefQuery, asserts []string, r core.ModRefResponse) {
	key, ok := p.sess.fleetModRefKey(p.scheme, q)
	if !ok {
		return
	}
	b, ok := encodeFleetModRef(r)
	if !ok {
		return
	}
	p.tier.Put(key, asserts, b)
}

// fleetLoopLookup serves one whole loop result from the tier: the stored
// value is the exact marshaled WireLoopResult a backend produced, and
// unmarshal→marshal of that struct is byte-stable, so the response is
// identical to resolving locally.
func (sess *session) fleetLoopLookup(key string) (WireLoopResult, bool) {
	if sess.fleet == nil {
		return WireLoopResult{}, false
	}
	b, ok := sess.fleet.Get(key)
	if !ok {
		return WireLoopResult{}, false
	}
	var wr WireLoopResult
	if err := json.Unmarshal(b, &wr); err != nil {
		return WireLoopResult{}, false
	}
	return wr, true
}

// fleetLoopPublish publishes one freshly-resolved loop result under key,
// provided it is canonical: no deadline was set (caller), nothing timed
// out, no module panicked, and no recovery event landed mid-resolution
// (the key was computed before resolving; a changed fingerprint means the
// key no longer names the session's current state). The entry is indexed
// under every assertion its queries are predicated on, so fleet-wide
// invalidation removes it exactly.
func (sess *session) fleetLoopPublish(key string, scheme scaf.Scheme, l *cfg.Loop, wr WireLoopResult, delta core.Stats) {
	if sess.fleet == nil {
		return
	}
	if delta.Timeouts > 0 || delta.ModulePanics > 0 {
		return
	}
	if sess.fleetLoopKey(scheme, l) != key {
		return
	}
	b, err := json.Marshal(wr)
	if err != nil {
		return
	}
	sess.fleet.Put(key, loopAssertKeys(wr), b)
}

// loopAssertKeys collects the deduplicated, sorted assertion keys across
// a loop result's query options.
func loopAssertKeys(wr WireLoopResult) []string {
	seen := map[string]bool{}
	var keys []string
	for _, q := range wr.Queries {
		for _, o := range q.Options {
			for _, a := range o.Asserts {
				if !seen[a] {
					seen[a] = true
					keys = append(keys, a)
				}
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// fleetBroadcast replicates a local recovery event (observe report,
// misspeculating execution, module panic) to every peer, synchronously:
// by the time the violating request is answered, every reachable
// instance has revoked. Unreachable peers are tolerated — their entries
// stay blocked by this instance's revoked sets and fingerprinted keys.
func (sess *session) fleetBroadcast(asserts, modules []string) {
	if sess.fleet == nil || (len(asserts) == 0 && len(modules) == 0) {
		return
	}
	sess.fleet.BroadcastRecovery(fleet.RecoveryRequest{
		Asserts: asserts,
		Modules: modules,
		Scope:   sess.fleetDigest,
	})
}

// applyFleetRecovery is the receiving half of fleetBroadcast, invoked by
// the tier's HTTP handler after the local shard has been invalidated. It
// folds the event into every session holding the same program (digest
// scope), invalidating predicated entries and bumping the epoch exactly
// as a local observe report would — minus the re-broadcast, which the
// origin already did.
func (s *Server) applyFleetRecovery(req fleet.RecoveryRequest) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.order))
	for _, id := range s.order {
		if sess := s.sessions[id]; sess != nil {
			sessions = append(sessions, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if sess.fleetDigest != req.Scope {
			continue
		}
		newA, newM := sess.quarantine.ApplyRemote(req.Asserts, req.Modules, req.Origin)
		if newA+newM == 0 {
			continue
		}
		sess.epoch.Add(1)
		if newM > 0 {
			// Module withdrawal changes answers that never name the module:
			// flush, exactly as the local module-quarantine path does.
			for _, sc := range sess.caches {
				sc.Flush()
			}
		} else {
			for _, sc := range sess.caches {
				sc.InvalidateAsserts(req.Asserts)
			}
		}
	}
	if len(req.Modules) > 0 && s.fleet != nil {
		// The shard's assertion index cannot attribute module-shaped
		// entries; flushing is the blunt-but-sound rule (entries are a
		// cache, and the revoked set survives a flush).
		s.fleet.Local().Flush()
	}
}
