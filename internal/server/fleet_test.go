package server

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newFleetPair boots two servers joined as a two-instance fleet over real
// loopback HTTP. The listeners are bound before either server is built so
// each Config can name the other's base URL.
func newFleetPair(t *testing.T) (sA, sB *Server, tsA, tsB *httptest.Server) {
	t.Helper()
	lA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA := "http://" + lA.Addr().String()
	urlB := "http://" + lB.Addr().String()

	sA = New(Config{Fleet: &FleetConfig{
		Self: "a", Peers: map[string]string{"b": urlB}, Timeout: 5 * time.Second,
	}})
	sB = New(Config{Fleet: &FleetConfig{
		Self: "b", Peers: map[string]string{"a": urlA}, Timeout: 5 * time.Second,
	}})

	start := func(l net.Listener, s *Server) *httptest.Server {
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = l
		ts.Start()
		t.Cleanup(ts.Close)
		t.Cleanup(func() { s.fleet.Close() })
		return ts
	}
	return sA, sB, start(lA, sA), start(lB, sB)
}

// TestFleetLookasideAndCodec exercises the whole fleet data plane inside
// one instance (no peers, purely local shard): a second identical session
// must serve /analyze whole from the loop lookaside and /query through the
// mod-ref codec, byte-identical to the first session's fresh resolution.
// This is the codec round-trip test — the served bytes went through
// encodeFleetModRef/decodeFleetModRef and marshal/unmarshal of the wire
// loop result, and any codec asymmetry would break the byte comparison.
func TestFleetLookasideAndCodec(t *testing.T) {
	srv, ts := newTestServer(t, Config{Fleet: &FleetConfig{Self: "solo"}})
	t.Cleanup(func() { srv.fleet.Close() })

	req := CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}
	info1 := createSession(t, ts, req)
	info2 := createSession(t, ts, req)

	gold := analyzeJSON(t, ts, info1.ID)
	if n := srv.fleetLoopHits.Load(); n != 0 {
		t.Fatalf("cold analyze hit the lookaside %d times", n)
	}

	// Session 2 shares the program digest, so its analyze must be served
	// whole from the tier without resolving anything.
	got := analyzeJSON(t, ts, info2.ID)
	if !bytes.Equal(got, gold) {
		t.Fatalf("lookaside-served analyze diverged:\ngot  %.400s\nwant %.400s", got, gold)
	}
	if n := srv.fleetLoopHits.Load(); n == 0 {
		t.Fatal("identical session analyze did not hit the loop lookaside")
	}

	var results []WireLoopResult
	if err := json.Unmarshal(gold, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || len(results[0].Queries) == 0 {
		t.Fatalf("no queries to re-ask: %.200s", gold)
	}
	ref := results[0].Queries[0]

	// Session 2's core caches are cold (its analyze never resolved), so a
	// single /query must be served through the mod-ref codec: encode on
	// publish by session 1, decode against session 2's module, render.
	status, raw := do(t, ts, "POST", "/sessions/"+info2.ID+"/query", QueryRequest{
		Scheme: "scaf", Loop: results[0].Loop, I1: ref.I1, I2: ref.I2, Rel: ref.Rel,
	})
	if status != http.StatusOK {
		t.Fatalf("query: status %d, body %s", status, raw)
	}
	qr := decode[QueryResponse](t, raw)
	refJSON, _ := json.Marshal(ref)
	gotJSON, _ := json.Marshal(qr.Query)
	if !bytes.Equal(gotJSON, refJSON) {
		t.Fatalf("codec-served query diverged from its fresh twin:\ngot  %s\nwant %s", gotJSON, refJSON)
	}

	_, raw = do(t, ts, "GET", "/metrics", nil)
	m := decode[MetricsResponse](t, raw)
	if m.Server.FleetLoopHits == 0 {
		t.Fatalf("fleet_loop_hits not surfaced: %+v", m.Server)
	}
	sm, ok := m.Sessions[info2.ID]
	if !ok {
		t.Fatalf("no metrics for session 2: %s", raw)
	}
	if sm.Stats.RemoteHits == 0 {
		t.Fatalf("query served without a counted fleet hit: %+v", sm.Stats)
	}
	if sm.Stats.RemoteHits > sm.Stats.SharedHits {
		t.Fatalf("remote hits %d exceed shared hits %d", sm.Stats.RemoteHits, sm.Stats.SharedHits)
	}
}

// TestFleetCrossInstanceRemoteHit: instance B serves a session it never
// analyzed from instance A's publications, over real HTTP, byte-identical
// to A's fresh resolution — both the whole-loop lookaside on /analyze and
// the mod-ref codec on /query.
func TestFleetCrossInstanceRemoteHit(t *testing.T) {
	sA, sB, tsA, tsB := newFleetPair(t)

	req := CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}
	infoA := createSession(t, tsA, req)
	infoB := createSession(t, tsB, req)

	gold := analyzeJSON(t, tsA, infoA.ID)
	// Push A's pending publications to the entries' home nodes; keys homed
	// on A are served to B by RPC either way.
	sA.fleet.Flush()

	got := analyzeJSON(t, tsB, infoB.ID)
	if !bytes.Equal(got, gold) {
		t.Fatalf("remote-served analyze diverged:\ngot  %.400s\nwant %.400s", got, gold)
	}
	if n := sB.fleetLoopHits.Load(); n == 0 {
		t.Fatal("B resolved locally instead of hitting the fleet lookaside")
	}
	if n := sA.fleetLoopHits.Load(); n != 0 {
		t.Fatalf("A's cold analyze counted %d lookaside hits", n)
	}

	var results []WireLoopResult
	if err := json.Unmarshal(gold, &results); err != nil {
		t.Fatal(err)
	}
	ref := results[0].Queries[0]
	status, raw := do(t, tsB, "POST", "/sessions/"+infoB.ID+"/query", QueryRequest{
		Scheme: "scaf", Loop: results[0].Loop, I1: ref.I1, I2: ref.I2, Rel: ref.Rel,
	})
	if status != http.StatusOK {
		t.Fatalf("query on B: status %d, body %s", status, raw)
	}
	qr := decode[QueryResponse](t, raw)
	refJSON, _ := json.Marshal(ref)
	gotJSON, _ := json.Marshal(qr.Query)
	if !bytes.Equal(gotJSON, refJSON) {
		t.Fatalf("B's codec-served query diverged from A's batch twin:\ngot  %s\nwant %s", gotJSON, refJSON)
	}

	// The tier's counters are surfaced through /metrics on both sides.
	_, raw = do(t, tsB, "GET", "/metrics", nil)
	m := decode[MetricsResponse](t, raw)
	if m.Fleet == nil {
		t.Fatalf("fleet stats missing from B's metrics: %.300s", raw)
	}
	if m.Fleet.LocalHits+m.Fleet.RemoteHits == 0 {
		t.Fatalf("B served fleet entries without counting hits: %+v", m.Fleet)
	}
	if m.Fleet.RemoteErrors != 0 {
		t.Fatalf("peer RPC errors in a healthy fleet: %+v", m.Fleet)
	}
	if sm, ok := m.Sessions[infoB.ID]; !ok || sm.Stats.RemoteHits == 0 {
		t.Fatalf("B's session did not count its fleet-served query: %+v", m.Sessions[infoB.ID])
	}
}

// TestFleetInvalidationGuaranteedMiss is the fleet-wide recovery
// guarantee, end to end over real HTTP: an assertion violated on instance
// A (POST /observe) causes a guaranteed miss for every predicated entry on
// instance B — B's next answers are byte-identical to a cold analysis that
// had those assertions excluded from the start, even though B never saw a
// local observe report.
func TestFleetInvalidationGuaranteedMiss(t *testing.T) {
	sA, sB, tsA, tsB := newFleetPair(t)

	req := CreateSessionRequest{Name: "small", Source: smallSource, Plan: "off"}
	infoA := createSession(t, tsA, req)
	infoB := createSession(t, tsB, req)

	// Warm the fleet: A resolves, B serves A's bytes.
	gold := analyzeJSON(t, tsA, infoA.ID)
	sA.fleet.Flush()
	if got := analyzeJSON(t, tsB, infoB.ID); !bytes.Equal(got, gold) {
		t.Fatalf("warmup: B diverged from A")
	}

	var results []WireLoopResult
	if err := json.Unmarshal(gold, &results); err != nil {
		t.Fatal(err)
	}
	keys := harvestAsserts(AnalyzeResponse{Results: results})
	if len(keys) == 0 {
		t.Fatal("vacuous test: no served answer was predicated on an assertion")
	}
	wantJSON := excludedRefs(t, smallSource, keys, nil)

	// Violate every predicating assertion on A. The broadcast is
	// synchronous: when /observe returns, B has already revoked.
	var vs []WireViolation
	for _, k := range keys {
		vs = append(vs, WireViolation{Assertion: k, Detail: "observed on a"})
	}
	status, raw := do(t, tsA, "POST", "/sessions/"+infoA.ID+"/observe", ObserveRequest{Violations: vs})
	if status != http.StatusOK {
		t.Fatalf("observe on A: status %d, body %s", status, raw)
	}

	// B's answers must now be the cold excluded-assertion bytes — the old
	// predicated entries are guaranteed misses fleet-wide — and A's must
	// agree with them.
	for pass := 0; pass < 2; pass++ {
		if got := analyzeJSON(t, tsB, infoB.ID); !bytes.Equal(got, wantJSON) {
			t.Fatalf("pass %d: B still serves pre-violation bytes\ngot  %.400s\nwant %.400s",
				pass, got, wantJSON)
		}
	}
	if got := analyzeJSON(t, tsA, infoA.ID); !bytes.Equal(got, wantJSON) {
		t.Fatalf("A diverged from the excluded-assertion reference")
	}

	// The violated assertions were replicated into B's quarantine, and at
	// least one predicated shard entry was physically removed somewhere in
	// the fleet (the loop entry is indexed under every harvested key).
	_, raw = do(t, tsB, "GET", "/metrics", nil)
	m := decode[MetricsResponse](t, raw)
	sm, ok := m.Sessions[infoB.ID]
	if !ok || sm.Quarantine == nil {
		t.Fatalf("B's session has no quarantine after replication: %.300s", raw)
	}
	if len(sm.Quarantine.Asserts) != len(keys) {
		t.Fatalf("B quarantined %v, want %v", sm.Quarantine.Asserts, keys)
	}
	invalidated := sA.fleet.Local().Stats().Invalidated + sB.fleet.Local().Stats().Invalidated
	if invalidated == 0 {
		t.Fatal("no shard entry was invalidated by the broadcast")
	}

	// The revoked entries are physically gone fleet-wide. A fresh session
	// on B starts with an empty quarantine, so its fleet keys are exactly
	// the pre-violation ones — if any revoked copy survived on any shard,
	// the lookaside would serve it. Instead the session must re-resolve
	// from scratch (no new lookaside hit), reproducing the clean-slate
	// bytes by fresh computation.
	sA.fleet.Flush()
	hitsBefore := sB.fleetLoopHits.Load()
	infoB2 := createSession(t, tsB, req)
	if got := analyzeJSON(t, tsB, infoB2.ID); !bytes.Equal(got, gold) {
		t.Fatalf("fresh session on B did not reproduce the clean-slate analysis")
	}
	if n := sB.fleetLoopHits.Load(); n != hitsBefore {
		t.Fatalf("fresh session was served a revoked fleet entry (%d -> %d lookaside hits)",
			hitsBefore, n)
	}
}
