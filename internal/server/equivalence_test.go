package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"scaf"
	"scaf/internal/bench"
)

// TestServerMatchesLibrary is the serving layer's core guarantee: for
// every benchmark and scheme, the bytes the HTTP path returns are
// identical to encoding the library path's results. The server side runs
// with warm pools, shared caches and latency recording; none of that may
// perturb a single answer (the end-to-end restatement of
// pdg.TestParallelMatchesSerial for the daemon).
func TestServerMatchesLibrary(t *testing.T) {
	names := []string{"129.compress", "181.mcf", "462.libquantum"}
	if testing.Short() {
		names = names[:1]
	}
	schemes := []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF}

	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := bench.Load(name)
			if err != nil {
				t.Fatalf("library load: %v", err)
			}

			_, ts := newTestServer(t, Config{})
			info := createSession(t, ts, CreateSessionRequest{Bench: name, Plan: "off"})
			if len(info.HotLoops) != len(b.Hot) {
				t.Fatalf("server sees %d hot loops, library %d", len(info.HotLoops), len(b.Hot))
			}

			for _, scheme := range schemes {
				// Library reference: plain serial orchestrator, no caches.
				o := b.Sys.Orchestrator(scheme)
				client := b.Sys.Client()
				var want []WireLoopResult
				for _, l := range b.Hot {
					want = append(want, EncodeLoopResult(client.AnalyzeLoop(o, l)))
				}
				wantJSON, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}

				// Twice through the server: the second pass answers from the
				// session's warm cache and must not drift either.
				for pass := 0; pass < 2; pass++ {
					status, raw := do(t, ts, "POST", "/sessions/"+info.ID+"/analyze",
						AnalyzeRequest{Scheme: scheme.String()})
					if status != http.StatusOK {
						t.Fatalf("%s analyze pass %d: status %d, body %s", scheme, pass, status, raw)
					}
					ar := decode[AnalyzeResponse](t, raw)
					gotJSON, err := json.Marshal(ar.Results)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotJSON, wantJSON) {
						t.Fatalf("%s/%s pass %d: HTTP answer differs from library answer\ngot  %.400s\nwant %.400s",
							name, scheme, pass, gotJSON, wantJSON)
					}
				}
			}
		})
	}
}
