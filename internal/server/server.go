// Package server turns the SCAF library into a long-running analysis
// daemon. A session is one compiled, profiled MC program with a
// validated speculation plan and warm per-scheme orchestrator pools;
// clients POST dependence queries (single, or batched per loop) against
// it over HTTP/JSON.
//
// The serving layer adds exactly three things over the library path, and
// none of them may change answers:
//
//   - coalescing: identical deadline-free in-flight requests share one
//     resolution (flightGroup), stacked on top of the per-scheme
//     core.SharedCache;
//   - admission control: a bounded worker pool plus a bounded wait
//     queue; overflow is rejected with 429 + Retry-After rather than
//     queued without bound;
//   - deadlines: a per-request budget mapped onto the orchestrator's
//     timeout bail-out, re-armed before every dependence query.
//
// Responses are encoded by the same functions the equivalence tests
// apply to library results, so "HTTP answers are bit-identical to
// scaf.AnalyzeWith" is a byte-level property, not a summary-level one.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"scaf/internal/core"
	"scaf/internal/fleet"
	"scaf/internal/persist"
)

// Config sizes the server.
type Config struct {
	// Workers bounds concurrently-executing analysis requests (default:
	// 4). Orchestrators are minted per concurrent request and stay warm,
	// so Workers also bounds each session's eventual pool size per scheme.
	Workers int
	// MaxQueue bounds requests waiting for a worker slot (default: 16).
	// Beyond it the server sheds load with 429 + Retry-After.
	MaxQueue int
	// DefaultDeadline, when positive, bounds requests that do not carry
	// their own deadline_ms. Deadline-bounded answers are never coalesced,
	// so leave this zero unless latency matters more than throughput.
	DefaultDeadline time.Duration
	// ExtraModules, when non-nil, mints additional modules appended to
	// every session orchestrator's ensemble — the fault-injection seam
	// (see recovery.Chaos). Called once per minted orchestrator; modules
	// it returns shared instances of must be safe for concurrent use.
	ExtraModules func() []core.Module
	// Fleet, when non-nil, joins this instance to a fleet: sessions share
	// canonical cache entries with peers and replicate recovery events to
	// them (see fleet.go), and the peer protocol is mounted under /fleet/.
	Fleet *FleetConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	return c
}

// Server is the analysis daemon's state: the session registry, the
// admission machinery, and the serving counters.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	sem   chan struct{}
	fleet *fleet.Tier // nil outside fleet mode

	// store is the shard's persistence layer (nil unless Fleet.CacheDir
	// is set). fleetOnce guards teardown: Shutdown can reach closeFleet
	// from more than one path, and the final snapshot must be written
	// exactly once, after the tier has stopped publishing.
	store       *persist.Store
	fleetOnce   sync.Once
	persistStop chan struct{}
	persistDone sync.WaitGroup

	// mu guards the lifecycle state: session registry and drain tracking.
	mu       sync.Mutex
	sessions map[string]*session
	order    []string
	nextID   int
	inflight int
	draining bool
	idle     chan struct{}

	flights flightGroup

	queued         atomic.Int64
	accepted       atomic.Int64
	rejected       atomic.Int64
	coalesceHits   atomic.Int64
	deadlineMisses atomic.Int64
	queriesServed  atomic.Int64
	loopsServed    atomic.Int64
	serverPanics   atomic.Int64
	observations   atomic.Int64
	executions     atomic.Int64
	fleetLoopHits  atomic.Int64
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Workers),
		sessions: map[string]*session{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /sessions", s.handleCreateSession)
	mux.HandleFunc("GET /sessions", s.handleListSessions)
	mux.HandleFunc("GET /sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("POST /sessions/{id}/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /sessions/{id}/query", s.handleQuery)
	mux.HandleFunc("POST /sessions/{id}/observe", s.handleObserve)
	mux.HandleFunc("POST /sessions/{id}/execute", s.handleExecute)
	if cfg.Fleet != nil {
		s.fleet = fleet.NewTier(fleet.TierConfig{
			Self:      cfg.Fleet.Self,
			Peers:     cfg.Fleet.Peers,
			VNodes:    cfg.Fleet.VNodes,
			Timeout:   cfg.Fleet.Timeout,
			AutoFlush: cfg.Fleet.AutoFlush,
		})
		h := &fleet.Handler{Cache: s.fleet.Local(), OnRecovery: s.applyFleetRecovery, Tier: s.fleet}
		h.Register(mux, "/fleet/")
		// Segment transfer: the router streams warm cache segments
		// between backends during a live join/leave through these.
		mux.HandleFunc("POST /fleet/segment", s.handleFleetSegment)
		mux.HandleFunc("POST /fleet/restore", s.handleFleetRestore)
		if cfg.Fleet.CacheDir != "" {
			s.openPersist(cfg.Fleet.CacheDir, cfg.Fleet.SnapshotEvery)
		}
	}
	s.mux = mux
	return s
}

// openPersist attaches the durable tier: load the snapshot (revocations
// first, then entries under the shard's own revoked check, so nothing
// quarantined can resurrect), journal every future revocation, and —
// when a period is set — snapshot in the background. A directory that
// cannot be opened leaves the instance memory-only; the canonical-entry
// rule means that is only a warmth regression, never a wrongness one.
func (s *Server) openPersist(dir string, every time.Duration) {
	st, err := persist.NewStore(dir)
	if err != nil {
		return
	}
	s.store = st
	snap, ds := st.Load()
	inserted, rejected := s.fleet.Local().Restore(snap.Revoked, snap.Entries)
	st.NoteLoad(inserted, rejected+ds.Dropped)
	s.fleet.Local().SetRevokeHook(func(keys []string) {
		if err := st.AppendRevoked(keys); err != nil {
			// The revocation is live in memory but not yet durable — a
			// crash before the next successful snapshot could resurrect
			// the quarantined entries. AppendRevoked already counted it
			// (journal_errors in /metrics); log so the degradation is
			// operator-visible, not silent.
			log.Printf("persist: journaling %d revocation(s) failed, revocation is memory-only until next snapshot: %v", len(keys), err)
		}
	})
	if every > 0 {
		s.persistStop = make(chan struct{})
		s.persistDone.Add(1)
		go s.snapshotLoop(every)
	}
}

func (s *Server) snapshotLoop(period time.Duration) {
	defer s.persistDone.Done()
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.saveSnapshot()
		case <-s.persistStop:
			return
		}
	}
}

// saveSnapshot writes the local shard to disk. The entry list and the
// revoked set are each taken consistently under the shard lock, and any
// revocation racing the save is already durable in the journal, so the
// pair can never let a quarantined entry survive a reload.
func (s *Server) saveSnapshot() error {
	if s.store == nil || s.fleet == nil {
		return nil
	}
	local := s.fleet.Local()
	return s.store.Save(persist.Snapshot{Revoked: local.RevokedKeys(), Entries: local.SnapshotEntries()})
}

// Fleet returns the instance's cache tier (nil outside fleet mode) —
// the seam tests and the load generator read counters through.
func (s *Server) Fleet() *fleet.Tier { return s.fleet }

// FleetSync pulls every reachable peer's recovery state into the local
// shard — called once at boot when (re)joining a fleet, so revocations
// broadcast while this instance was down take effect before it serves.
func (s *Server) FleetSync() error {
	if s.fleet == nil {
		return nil
	}
	return s.fleet.SyncState()
}

// Handler returns the daemon's HTTP handler. Every request is tracked
// for graceful drain; requests arriving after Shutdown begins get 503.
// Handler panics are isolated per request (see withRecovery).
func (s *Server) Handler() http.Handler {
	inner := s.withRecovery(s.mux)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.enter() {
			w.Header().Set("Retry-After", "5")
			writeError(w, &httpError{status: http.StatusServiceUnavailable,
				detail: ErrorDetail{Code: "draining", Message: "server is shutting down"}})
			return
		}
		defer s.exit()
		inner.ServeHTTP(w, r)
	})
}

// withRecovery converts a panicking handler into a 500 JSON error plus a
// server_panics increment: one faulty request degrades to an error
// response, it never takes the daemon (or its drain accounting) down.
// http.ErrAbortHandler is re-raised — it is net/http's sanctioned way to
// abort a response, not a fault.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.serverPanics.Add(1)
			writeError(w, &httpError{status: http.StatusInternalServerError,
				detail: ErrorDetail{Code: "internal_panic", Message: fmt.Sprint(rec)}})
		}()
		next.ServeHTTP(w, r)
	})
}

// enter registers one in-flight request; false means the server is
// draining and the request must be refused.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) exit() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.mu.Unlock()
}

// Shutdown starts draining: new requests are refused with 503 and the
// call blocks until every in-flight request has completed (or ctx
// expires). Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 {
		s.mu.Unlock()
		s.closeFleet()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		s.closeFleet()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown interrupted with requests in flight")
	}
}

// closeFleet drains pending publications, stops the tier's flusher,
// and — when the shard is durable — writes the final drain snapshot.
// Exactly once, however many shutdown paths reach it.
func (s *Server) closeFleet() {
	s.fleetOnce.Do(func() {
		if s.persistStop != nil {
			close(s.persistStop)
			s.persistDone.Wait()
		}
		if s.fleet != nil {
			s.fleet.Close()
		}
		if s.store != nil {
			s.saveSnapshot()
			s.store.Close()
		}
	})
}

// PersistStats reports the durable tier's counters (nil when the
// instance is memory-only).
func (s *Server) PersistStats() *persist.Stats {
	if s.store == nil {
		return nil
	}
	st := s.store.Stats()
	return &st
}

// admit acquires a worker slot for one analysis request, waiting in the
// bounded queue if all slots are busy. It returns a release function, or
// an error (429 when the queue is full, 503 when the caller gave up).
func (s *Server) admit(r *http.Request) (func(), *httpError) {
	select {
	case s.sem <- struct{}{}:
		s.accepted.Add(1)
		return func() { <-s.sem }, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		he := &httpError{status: http.StatusTooManyRequests,
			detail: ErrorDetail{Code: "overloaded",
				Message: fmt.Sprintf("all %d workers busy and %d requests queued", s.cfg.Workers, s.cfg.MaxQueue)}}
		he.retryAfter = "1"
		return nil, he
	}
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
		s.accepted.Add(1)
		return func() { <-s.sem }, nil
	case <-r.Context().Done():
		s.queued.Add(-1)
		s.rejected.Add(1)
		return nil, &httpError{status: http.StatusServiceUnavailable,
			detail: ErrorDetail{Code: "canceled", Message: "request canceled while queued"}}
	}
}

// lookup finds a session by path id.
func (s *Server) lookup(r *http.Request) (*session, *httpError) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return nil, errNotFound("no session %q", id)
	}
	return sess, nil
}

// deadlineFor resolves a request's absolute deadline (zero: unbounded).
func (s *Server) deadlineFor(ms int64) time.Time {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

const maxBodyBytes = 8 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) *httpError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest("decoding request body: %v", err)
	}
	return nil
}

// createSession allocates an id, builds the session (compile, profile,
// plan-validate, warm pools) and registers it.
func (s *Server) createSession(req *CreateSessionRequest) (*session, *httpError) {
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.mu.Unlock()

	sess, he := newSession(id, req, s.cfg, s.fleet)
	if he != nil {
		return nil, he
	}
	s.mu.Lock()
	s.sessions[id] = sess
	s.order = append(s.order, id)
	s.mu.Unlock()
	return sess, nil
}

// Preload loads an embedded benchmark as a session outside the HTTP path
// (startup convenience; plan validation applies exactly as on POST
// /sessions).
func (s *Server) Preload(bench string) (SessionInfo, error) {
	sess, he := s.createSession(&CreateSessionRequest{Bench: bench})
	if he != nil {
		return SessionInfo{}, fmt.Errorf("%s: %s", he.detail.Code, he.detail.Message)
	}
	return sess.info(), nil
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if he := decodeJSON(w, r, &req); he != nil {
		writeError(w, he)
		return
	}
	release, he := s.admit(r)
	if he != nil {
		writeError(w, he)
		return
	}
	defer release()

	sess, he := s.createSession(&req)
	if he != nil {
		writeError(w, he)
		return
	}
	writeJSON(w, http.StatusCreated, sess.info())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]SessionInfo, 0, len(s.order))
	for _, id := range s.order {
		if sess := s.sessions[id]; sess != nil {
			out = append(out, sess.info())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, he := s.lookup(r)
	if he != nil {
		writeError(w, he)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, errNotFound("no session %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	sess, he := s.lookup(r)
	if he != nil {
		writeError(w, he)
		return
	}
	var req AnalyzeRequest
	if he := decodeJSON(w, r, &req); he != nil {
		writeError(w, he)
		return
	}
	scheme, he := parseScheme(req.Scheme)
	if he != nil {
		writeError(w, he)
		return
	}
	loops := sess.hot
	if len(req.Loops) > 0 {
		loops = loops[:0:0]
		for _, name := range req.Loops {
			l, ok := sess.loops[name]
			if !ok {
				writeError(w, errNotFound("no hot loop %q in session %s", name, sess.id))
				return
			}
			loops = append(loops, l)
		}
	}

	release, he := s.admit(r)
	if he != nil {
		writeError(w, he)
		return
	}
	defer release()

	deadline := s.deadlineFor(req.DeadlineMS)
	resp := AnalyzeResponse{Session: sess.id, Scheme: scheme.String()}
	for _, l := range loops {
		var wr WireLoopResult
		if deadline.IsZero() {
			// Deadline-free: the answer is a pure function of (session,
			// scheme, loop, recovery epoch), so concurrent identical
			// batches share one resolution. The epoch component keeps a
			// post-recovery request from joining a computation started
			// before an observe report landed.
			key := fmt.Sprintf("analyze|%s|e%d|%s|%s",
				sess.id, sess.epoch.Load(), scheme.String(), l.Name())
			l := l
			v, shared, _ := s.flights.do(key, func() (any, error) {
				// Fleet lookaside: the whole loop's wire result, keyed by
				// (digest, scheme, quarantine fingerprint, loop), may have
				// been resolved by a peer already. The stored bytes are the
				// exact marshaled result, so a hit is byte-identical.
				var fleetKey string
				if sess.fleet != nil {
					fleetKey = sess.fleetLoopKey(scheme, l)
					if wr, ok := sess.fleetLoopLookup(fleetKey); ok {
						s.fleetLoopHits.Add(1)
						return wr, nil
					}
				}
				wr, delta := sess.analyzeLoop(scheme, l, time.Time{})
				if sess.fleet != nil {
					sess.fleetLoopPublish(fleetKey, scheme, l, wr, delta)
				}
				return wr, nil
			})
			if shared {
				s.coalesceHits.Add(1)
				resp.CoalesceHits++
			}
			wr = v.(WireLoopResult)
		} else {
			var delta core.Stats
			wr, delta = sess.analyzeLoop(scheme, l, deadline)
			resp.DeadlineMisses += delta.Timeouts
			s.deadlineMisses.Add(delta.Timeouts)
		}
		resp.Results = append(resp.Results, wr)
		s.loopsServed.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sess, he := s.lookup(r)
	if he != nil {
		writeError(w, he)
		return
	}
	var req QueryRequest
	if he := decodeJSON(w, r, &req); he != nil {
		writeError(w, he)
		return
	}
	scheme, he := parseScheme(req.Scheme)
	if he != nil {
		writeError(w, he)
		return
	}
	l, ok := sess.loops[req.Loop]
	if !ok {
		writeError(w, errNotFound("no hot loop %q in session %s", req.Loop, sess.id))
		return
	}
	rel, err := ParseRel(req.Rel)
	if err != nil {
		writeError(w, errBadRequest("%v", err))
		return
	}
	i1, he := sess.lookupInstr(req.I1)
	if he != nil {
		writeError(w, he)
		return
	}
	i2, he := sess.lookupInstr(req.I2)
	if he != nil {
		writeError(w, he)
		return
	}

	release, he := s.admit(r)
	if he != nil {
		writeError(w, he)
		return
	}
	defer release()

	deadline := s.deadlineFor(req.DeadlineMS)
	resp := QueryResponse{Session: sess.id, Scheme: scheme.String()}
	if deadline.IsZero() {
		key := fmt.Sprintf("query|%s|e%d|%s|%s|%s|%s|%s",
			sess.id, sess.epoch.Load(), scheme.String(), l.Name(),
			req.I1, req.I2, rel.String())
		v, shared, _ := s.flights.do(key, func() (any, error) {
			wq, _ := sess.resolveQuery(scheme, l, i1, i2, rel, time.Time{})
			return wq, nil
		})
		if shared {
			s.coalesceHits.Add(1)
			resp.Coalesced = true
		}
		resp.Query = v.(WireQuery)
	} else {
		wq, delta := sess.resolveQuery(scheme, l, i1, i2, rel, deadline)
		resp.Query = wq
		if delta.Timeouts > 0 {
			resp.DeadlineMiss = true
			s.deadlineMisses.Add(delta.Timeouts)
		}
	}
	s.queriesServed.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleObserve ingests a production misspeculation report: quarantine
// the violated assertions / withdrawn modules, invalidate every cached
// answer predicated on them, re-resolve under the degraded plan (see
// session.observe).
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	sess, he := s.lookup(r)
	if he != nil {
		writeError(w, he)
		return
	}
	var req ObserveRequest
	if he := decodeJSON(w, r, &req); he != nil {
		writeError(w, he)
		return
	}
	release, he := s.admit(r)
	if he != nil {
		writeError(w, he)
		return
	}
	defer release()

	resp, he := sess.observe(&req)
	if he != nil {
		writeError(w, he)
		return
	}
	s.observations.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleExecute runs the session's program under the speculative-parallel
// runtime (see session.execute). Misspeculation is a 200 with recovery
// visible in the report; only a program that cannot execute is an error.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	sess, he := s.lookup(r)
	if he != nil {
		writeError(w, he)
		return
	}
	var req ExecuteRequest
	if he := decodeJSON(w, r, &req); he != nil {
		writeError(w, he)
		return
	}
	release, he := s.admit(r)
	if he != nil {
		writeError(w, he)
		return
	}
	defer release()

	resp, he := sess.execute(&req)
	if he != nil {
		writeError(w, he)
		return
	}
	s.executions.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Sessions: n})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.order))
	for _, id := range s.order {
		if sess := s.sessions[id]; sess != nil {
			sessions = append(sessions, sess)
		}
	}
	draining := s.draining
	inflight := s.inflight
	s.mu.Unlock()

	resp := MetricsResponse{
		Server: ServerCounters{
			Accepted:       s.accepted.Load(),
			Rejected:       s.rejected.Load(),
			QueueDepth:     s.queued.Load(),
			InFlight:       int64(inflight),
			CoalesceHits:   s.coalesceHits.Load(),
			DeadlineMisses: s.deadlineMisses.Load(),
			QueriesServed:  s.queriesServed.Load(),
			LoopsServed:    s.loopsServed.Load(),
			ServerPanics:   s.serverPanics.Load(),
			Observations:   s.observations.Load(),
			Executions:     s.executions.Load(),
			FleetLoopHits:  s.fleetLoopHits.Load(),
			Sessions:       len(sessions),
			Draining:       draining,
		},
		Sessions: map[string]SessionMetrics{},
	}
	if s.fleet != nil {
		ts := s.fleet.Stats()
		resp.Fleet = &ts
	}
	resp.Persist = s.PersistStats()
	for _, sess := range sessions {
		resp.Sessions[sess.id] = sess.metricsSnapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

// NewHTTPServer wraps h in an http.Server hardened for untrusted
// clients: header/body read timeouts bound slow-loris uploads and
// IdleTimeout reaps abandoned keep-alive connections, so a stalled
// client cannot pin a connection forever. No WriteTimeout is set —
// analysis responses can legitimately take long to compute; response
// time is governed by request deadlines and admission control instead.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // client gone mid-write: nothing useful to do
}

func writeError(w http.ResponseWriter, he *httpError) {
	if he.retryAfter != "" {
		w.Header().Set("Retry-After", he.retryAfter)
	}
	writeJSON(w, he.status, ErrorResponse{Error: he.detail})
}
