// Package runtime closes the paper's loop from analysis to execution: it
// takes the PDG client's speculation plans and actually runs the program
// that way. Loops the plan marks DOALL have their iterations partitioned
// into chunks executed by worker goroutines, each against a journaled
// view of memory (interp.View); at commit time the journals are validated
// against exactly what the plan speculated — no cross-iteration write/
// write or write/read overlap the analysis did not admit. A clean
// invocation commits chunk journals in iteration order, so the result is
// byte-identical to serial execution. A dirty one aborts the offending
// chunk and everything after it, quarantines the assertions the denied
// dependence rode on (recovery.Quarantine + core.SharedCache
// invalidation), re-plans, and re-executes the losing range serially —
// the misspeculation recovery the paper's clients pay for.
package runtime

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/interp"
	"scaf/internal/ir"
	"scaf/internal/pdg"
	"scaf/internal/recovery"
)

// LoopPlan pairs one hot loop's dependence queries with the validation
// plan built over them.
type LoopPlan struct {
	Loop *cfg.Loop
	Res  *pdg.LoopResult
	Plan *pdg.Plan
}

// Config configures an execution.
type Config struct {
	// Workers is the number of chunks a speculated invocation is split
	// into (and the goroutines that run them). Default 4.
	Workers int
	// MinIters declines speculation for invocations with fewer
	// iterations than this. Default 2×Workers.
	MinIters int64
	// MaxSteps bounds the top-level interpreter (0: interp default).
	// Each speculative chunk gets the same budget independently.
	MaxSteps int64
	// Quarantine receives assertions disproved by a misspeculation.
	Quarantine *recovery.Quarantine
	// Cache, when set, has entries predicated on newly quarantined
	// assertions invalidated at the abort point.
	Cache *core.SharedCache
	// Replan re-analyzes the hot loops after the quarantine grows and
	// returns fresh plans; nil drops speculation for the violated loop.
	Replan func() []LoopPlan

	// disableCommitGuard skips commit-time validation, publishing every
	// chunk journal unchecked. Test-only: the abort-guard regression test
	// sets it to prove aborted ranges would otherwise corrupt the result.
	disableCommitGuard bool
}

// LoopStats are the per-loop deterministic counters. They depend only on
// the program, the plans, and Config — never on goroutine timing — so the
// bench-regression gate can compare them exactly.
type LoopStats struct {
	Loop string `json:"loop"`
	// Refusal is why the loop is not (or no longer) speculated: a shape
	// reason, "not DOALL under plan", or a disable after an
	// unattributable abort. Empty for speculated loops.
	Refusal string `json:"refusal,omitempty"`
	// Invocations counts loop entries seen by the hook; SpecInvocations
	// the subset executed speculatively (trip count large enough).
	Invocations     int64 `json:"invocations"`
	SpecInvocations int64 `json:"spec_invocations"`
	Chunks          int64 `json:"chunks"`
	CommittedChunks int64 `json:"committed_chunks"`
	AbortedChunks   int64 `json:"aborted_chunks"`
	// SpecIters counts iterations whose speculative results committed;
	// SerialIters iterations re-executed serially after an abort.
	SpecIters   int64 `json:"spec_iters"`
	SerialIters int64 `json:"serial_iters"`
	// Misspecs counts aborted invocations (the misspeculation events).
	Misspecs int64 `json:"misspecs"`
}

// Report is the outcome of one speculative execution.
type Report struct {
	Output    []string    `json:"-"`
	Steps     int64       `json:"steps"`
	MemDigest uint64      `json:"mem_digest"`
	Loops     []LoopStats `json:"loops,omitempty"`

	DoallLoops      int   `json:"doall_loops"`
	RefusedLoops    int   `json:"refused_loops"`
	SpecInvocations int64 `json:"spec_invocations"`
	Chunks          int64 `json:"chunks"`
	CommittedChunks int64 `json:"committed_chunks"`
	AbortedChunks   int64 `json:"aborted_chunks"`
	SpecIters       int64 `json:"spec_iters"`
	SerialIters     int64 `json:"serial_iters"`
	Misspecs        int64 `json:"misspecs"`
	ReplanRounds    int64 `json:"replan_rounds"`
	// QuarantinedAsserts lists the assertion keys withdrawn during the
	// run, sorted.
	QuarantinedAsserts []string `json:"quarantined_asserts,omitempty"`
	// WallNanos is wall-clock time — NOT deterministic, excluded from
	// regression gates.
	WallNanos int64 `json:"wall_nanos"`
}

// specLoop is one loop the executor is currently willing to speculate.
type specLoop struct {
	shape *Shape
	byKey map[pdg.Key]*pdg.Query
	plan  *pdg.Plan
	stats *LoopStats
}

type executor struct {
	cfg          Config
	byHeader     map[*ir.Block]*specLoop
	stats        map[string]*LoopStats
	disabled     map[string]bool
	replanRounds int64
}

// doall reports whether the plan discharges every cross-iteration
// dependence query of the loop.
func doall(res *pdg.LoopResult, plan *pdg.Plan) bool {
	for i := range res.Queries {
		q := &res.Queries[i]
		if q.Rel != core.Before {
			continue
		}
		if !plan.Covers(q) {
			return false
		}
	}
	return true
}

// Execute runs prog's main under the speculative executor.
func Execute(prog *cfg.Program, plans []LoopPlan, cfg Config) (*Report, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MinIters <= 0 {
		cfg.MinIters = int64(2 * cfg.Workers)
	}
	ex := &executor{cfg: cfg, stats: map[string]*LoopStats{}, disabled: map[string]bool{}}
	ex.install(plans)
	start := time.Now()
	res, err := interp.Run(prog.Mod, interp.Options{MaxSteps: cfg.MaxSteps, Hook: ex.hook})
	if err != nil {
		return nil, err
	}
	rep := ex.report(res)
	rep.WallNanos = time.Since(start).Nanoseconds()
	return rep, nil
}

func (ex *executor) statsFor(name string) *LoopStats {
	st := ex.stats[name]
	if st == nil {
		st = &LoopStats{Loop: name}
		ex.stats[name] = st
	}
	return st
}

// install (re)builds the speculation table from fresh plans, preserving
// accumulated stats.
func (ex *executor) install(plans []LoopPlan) {
	ex.byHeader = map[*ir.Block]*specLoop{}
	for _, lp := range plans {
		st := ex.statsFor(lp.Loop.Name())
		if ex.disabled[st.Loop] {
			st.Refusal = "disabled after unattributable abort"
			continue
		}
		shape, reason := Recognize(lp.Loop)
		if reason != "" {
			st.Refusal = "shape: " + reason
			continue
		}
		if !doall(lp.Res, lp.Plan) {
			st.Refusal = "not DOALL under plan"
			continue
		}
		st.Refusal = ""
		ex.byHeader[shape.Header] = &specLoop{
			shape: shape,
			byKey: lp.Res.ByKey(),
			plan:  lp.Plan,
			stats: st,
		}
	}
}

// hook intercepts entries into speculated loop headers from outside the
// loop (back edges and in-loop control flow pass through untouched).
func (ex *executor) hook(fr *interp.Frame, block, prev *ir.Block) (*ir.Block, *ir.Block, error) {
	sl := ex.byHeader[block]
	if sl == nil || prev == nil || sl.shape.Loop.Blocks[prev] {
		return nil, nil, nil
	}
	return ex.speculate(fr, sl, prev)
}

// chunkRun is one worker's slice of the iteration space.
type chunkRun struct {
	lo, hi int64
	view   *interp.View
	regs   []uint64
	out    []string
	steps  int64
	iters  int64
	err    error
}

// conflict is one validated cross-chunk dependence the plan denied.
type conflict struct {
	addr           uint64
	writer, reader *ir.Instr
	kind           string // "flow" or "output"
}

// speculate executes one invocation of sl speculatively, returning the
// (block, prev) pair execution resumes from. Declining (nil, nil, nil)
// falls back to ordinary serial interpretation of the whole loop.
func (ex *executor) speculate(fr *interp.Frame, sl *specLoop, prev *ir.Block) (*ir.Block, *ir.Block, error) {
	sh, st := sl.shape, sl.stats
	st.Invocations++

	initVal := ir.PhiIncoming(sh.Phi, prev)
	if initVal == nil {
		return nil, nil, nil
	}
	initRaw, err := fr.It.Eval(initVal, fr)
	if err != nil {
		return nil, nil, nil
	}
	boundRaw, err := fr.It.Eval(sh.Bound, fr)
	if err != nil {
		return nil, nil, nil
	}
	init, bound := int64(initRaw), int64(boundRaw)
	trip, ok := sh.Trip(init, bound)
	if !ok || trip < ex.cfg.MinIters {
		return nil, nil, nil
	}

	st.SpecInvocations++
	nch := ex.cfg.Workers
	if int64(nch) > trip {
		nch = int(trip)
	}
	parent := fr.It
	base := parent.Heap()

	runs := make([]*chunkRun, nch)
	var wg sync.WaitGroup
	for c := 0; c < nch; c++ {
		cr := &chunkRun{lo: trip * int64(c) / int64(nch), hi: trip * int64(c+1) / int64(nch)}
		runs[c] = cr
		wg.Add(1)
		go func(last bool) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					cr.err = fmt.Errorf("panic in speculative chunk: %v", r)
				}
			}()
			view := interp.NewView(base)
			fork := parent.Fork(view)
			regs := append([]uint64(nil), fr.Regs...)
			regs[sh.Next.ID] = uint64(sh.Ind(init, cr.lo))
			cfr := &interp.Frame{It: fork, Fn: fr.Fn, Regs: regs, Args: fr.Args, Depth: fr.Depth, Ctx: fr.Ctx}
			want := cr.hi - cr.lo
			var done int64
			stop := func(from, to *ir.Block) bool {
				if from == sh.Header && to == sh.Exit {
					return true
				}
				if to == sh.Header && from == sh.Latch {
					done++
					if last {
						return done > want // runaway guard; trip was exact
					}
					return done >= want
				}
				return false
			}
			end, rerr := fork.RunRegion(cfr, sh.Header, sh.Latch, stop)
			cr.view, cr.regs, cr.out, cr.steps, cr.iters = view, regs, fork.Output(), fork.Steps(), done
			switch {
			case rerr != nil:
				cr.err = rerr
			case end.Returned:
				cr.err = fmt.Errorf("speculative region returned from %s", fr.Fn.Name)
			case !last && end.To == sh.Exit && done < want:
				cr.err = fmt.Errorf("early exit after %d of %d iterations", done, want)
			case last && (end.To != sh.Exit || done != want):
				cr.err = fmt.Errorf("final chunk stopped at %s after %d of %d iterations", end.To, done, want)
			}
		}(c == nch-1)
	}
	wg.Wait()

	// Validate in commit order: chunk k's journals against the write sets
	// of every chunk before it. The guard enforces exactly the
	// speculated independence — an exposed read (flow) or a write
	// (output) landing on a byte an earlier chunk wrote is a
	// cross-iteration dependence the plan denied.
	firstBad := nch
	var conflicts []conflict
	if ex.cfg.disableCommitGuard {
		for k := 0; k < nch; k++ {
			if runs[k].err != nil {
				firstBad = k
				break
			}
		}
	} else {
		prior := map[uint64]*ir.Instr{}
	scan:
		for k := 0; k < nch; k++ {
			cr := runs[k]
			if cr.err != nil {
				firstBad = k
				break
			}
			var cs []conflict
			for addr, reader := range cr.view.ExposedReads() {
				if w, ok := prior[addr]; ok {
					cs = append(cs, conflict{addr: addr, writer: w, reader: reader, kind: "flow"})
				}
			}
			for addr, writer := range cr.view.Writes() {
				if w, ok := prior[addr]; ok {
					cs = append(cs, conflict{addr: addr, writer: w, reader: writer, kind: "output"})
				}
			}
			if len(cs) > 0 {
				sort.Slice(cs, func(i, j int) bool {
					if cs[i].addr != cs[j].addr {
						return cs[i].addr < cs[j].addr
					}
					return cs[i].kind < cs[j].kind
				})
				conflicts, firstBad = cs, k
				break scan
			}
			for addr, writer := range cr.view.Writes() {
				prior[addr] = writer
			}
		}
	}

	// Commit the validated prefix in iteration order: journal bytes, then
	// the chunk's printed output and step count.
	st.Chunks += int64(nch)
	for k := 0; k < firstBad; k++ {
		cr := runs[k]
		if err := cr.view.CommitTo(base); err != nil {
			return nil, nil, fmt.Errorf("runtime: commit of %s chunk %d: %w", st.Loop, k, err)
		}
		parent.AppendOutput(cr.out)
		parent.AddSteps(cr.steps)
		st.CommittedChunks++
		st.SpecIters += cr.iters
	}

	if firstBad == nch {
		// Every chunk validated: the final chunk's registers are exactly
		// the serial post-loop register file (every value legally usable
		// after the loop is defined on the path through the final
		// iteration and the exiting header evaluation).
		copy(fr.Regs, runs[nch-1].regs)
		return sh.Exit, sh.Header, nil
	}

	// Misspeculation: quarantine what the denied dependence rode on,
	// invalidate predicated cache entries, re-plan, and re-execute the
	// losing range serially.
	st.Misspecs++
	st.AbortedChunks += int64(nch - firstBad)
	ex.recoverFrom(sl, runs[firstBad], conflicts)

	lo := runs[firstBad].lo
	fr.Regs[sh.Next.ID] = uint64(sh.Ind(init, lo))
	stop := func(from, to *ir.Block) bool { return from == sh.Header && to == sh.Exit }
	if _, err := parent.RunRegion(fr, sh.Header, sh.Latch, stop); err != nil {
		return nil, nil, err
	}
	st.SerialIters += trip - lo
	return sh.Exit, sh.Header, nil
}

// recoverFrom reports a misspeculation through the observe/quarantine
// path and refreshes the speculation table.
func (ex *executor) recoverFrom(sl *specLoop, bad *chunkRun, conflicts []conflict) {
	st := sl.stats
	var newKeys []string
	for _, c := range conflicts {
		detail := fmt.Sprintf("%s dependence observed at %#x (%s -> %s) in %s",
			c.kind, c.addr, c.writer, c.reader, st.Loop)
		for _, key := range []pdg.Key{
			{I1: c.writer, I2: c.reader, Rel: core.Before},
			{I1: c.reader, I2: c.writer, Rel: core.Before},
		} {
			q := sl.byKey[key]
			if q == nil {
				continue
			}
			for _, a := range sl.plan.Attribution(q) {
				k := a.String()
				if ex.cfg.Quarantine != nil && ex.cfg.Quarantine.AddAssert(k, detail) {
					newKeys = append(newKeys, k)
				}
			}
		}
	}
	sort.Strings(newKeys)
	if len(newKeys) > 0 && ex.cfg.Cache != nil {
		ex.cfg.Cache.InvalidateAsserts(newKeys)
	}
	if len(newKeys) > 0 && ex.cfg.Replan != nil {
		ex.replanRounds++
		ex.install(ex.cfg.Replan())
		return
	}
	// Nothing attributable was withdrawn (or no re-planner): stop
	// speculating this loop so repeated invocations cannot abort forever.
	ex.disabled[st.Loop] = true
	delete(ex.byHeader, sl.shape.Header)
	st.Refusal = "disabled after unattributable abort"
}

func (ex *executor) report(res *interp.Result) *Report {
	rep := &Report{Output: res.Output, Steps: res.Steps, MemDigest: res.Mem.Digest()}
	names := make([]string, 0, len(ex.stats))
	for n := range ex.stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := ex.stats[n]
		rep.Loops = append(rep.Loops, *st)
		if st.Refusal != "" {
			rep.RefusedLoops++
		} else {
			rep.DoallLoops++
		}
		rep.SpecInvocations += st.SpecInvocations
		rep.Chunks += st.Chunks
		rep.CommittedChunks += st.CommittedChunks
		rep.AbortedChunks += st.AbortedChunks
		rep.SpecIters += st.SpecIters
		rep.SerialIters += st.SerialIters
		rep.Misspecs += st.Misspecs
	}
	rep.ReplanRounds = ex.replanRounds
	if ex.cfg.Quarantine != nil {
		rep.QuarantinedAsserts = ex.cfg.Quarantine.AssertKeys()
	}
	return rep
}
