package runtime_test

import (
	"reflect"
	"testing"

	"scaf"
	"scaf/internal/interp"
	"scaf/internal/profile"
	"scaf/internal/runtime"
)

// allLoopsHot makes every loop in a small test program analyzable.
var allLoopsHot = profile.HotLoopParams{MinWeightFrac: 0.001, MinAvgIters: 1.5}

func load(t *testing.T, src string) *scaf.System {
	t.Helper()
	sys, err := scaf.Load("rt-test", src, scaf.Options{HotLoops: &allLoopsHot})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return sys
}

func serialRun(t *testing.T, sys *scaf.System) *interp.Result {
	t.Helper()
	res, err := interp.Run(sys.Mod, interp.Options{})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	return res
}

const doallSrc = `
int a[64];
int b[64];
void main() {
    for (int i = 0; i < 64; i++) {
        a[i] = i * 3;
        b[i] = i + 1;
    }
    for (int i = 0; i < 64; i++) {
        a[i] = a[i] * 2 + b[i];
    }
    int s = 0;
    for (int i = 0; i < 64; i++) {
        s = s + a[i];
    }
    print(s);
}
`

// TestDoallMatchesSerial: speculative-parallel execution of DOALL plans
// must be byte-equal to serial interpretation — output, memory image, and
// no misspeculation — under every scheme.
func TestDoallMatchesSerial(t *testing.T) {
	sys := load(t, doallSrc)
	serial := serialRun(t, sys)
	for _, scheme := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF} {
		rep, err := sys.ExecutePlan(scheme, runtime.Config{Workers: 4, MinIters: 2})
		if err != nil {
			t.Fatalf("%s: execute: %v", scheme, err)
		}
		if !reflect.DeepEqual(rep.Output, serial.Output) {
			t.Errorf("%s: output diverged: got %v want %v", scheme, rep.Output, serial.Output)
		}
		if rep.MemDigest != serial.Mem.Digest() {
			t.Errorf("%s: memory diverged (digest %#x vs %#x)", scheme, rep.MemDigest, serial.Mem.Digest())
		}
		if rep.Misspecs != 0 {
			t.Errorf("%s: unexpected misspeculation: %+v", scheme, rep)
		}
		if scheme == scaf.SchemeSCAF && rep.SpecInvocations < 2 {
			t.Errorf("SCAF: expected at least 2 speculated invocations, got %d (loops: %+v)",
				rep.SpecInvocations, rep.Loops)
		}
	}
}

// TestReductionRefused: the reduction loop carries a second header phi
// and must be refused on shape, never speculated.
func TestReductionRefused(t *testing.T) {
	sys := load(t, doallSrc)
	rep, err := sys.ExecutePlan(scaf.SchemeSCAF, runtime.Config{Workers: 4, MinIters: 2})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	found := false
	for _, ls := range rep.Loops {
		if ls.Refusal != "" && ls.SpecInvocations == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the reduction loop to be shape-refused; loops: %+v", rep.Loops)
	}
	if rep.RefusedLoops == 0 {
		t.Errorf("RefusedLoops = 0, want >= 1")
	}
}

// TestDependentLoopNotSpeculated: a loop with a genuine cross-iteration
// flow dependence through memory must not be DOALL under any honest
// scheme — the plan cannot cover the dependence, so execution is serial
// and still byte-equal.
func TestDependentLoopNotSpeculated(t *testing.T) {
	src := `
int a[64];
void main() {
    a[0] = 1;
    for (int i = 1; i < 64; i++) {
        a[i] = a[i - 1] + i;
    }
    print(a[63]);
}
`
	sys := load(t, src)
	serial := serialRun(t, sys)
	rep, err := sys.ExecutePlan(scaf.SchemeSCAF, runtime.Config{Workers: 4, MinIters: 2})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if !reflect.DeepEqual(rep.Output, serial.Output) {
		t.Errorf("output diverged: got %v want %v", rep.Output, serial.Output)
	}
	if rep.MemDigest != serial.Mem.Digest() {
		t.Errorf("memory diverged")
	}
	if rep.Misspecs != 0 {
		t.Errorf("honest analysis must not misspeculate, got %d", rep.Misspecs)
	}
}

// TestCountersDeterministic: the commit/abort counters are a pure
// function of program, plans, and config — two runs must agree exactly.
func TestCountersDeterministic(t *testing.T) {
	sys := load(t, doallSrc)
	run := func() *runtime.Report {
		rep, err := sys.ExecutePlan(scaf.SchemeSCAF, runtime.Config{Workers: 4, MinIters: 2})
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		rep.WallNanos = 0
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("counters diverged between runs:\n%+v\n%+v", a, b)
	}
}

// TestManyWorkersStillExact: chunk counts beyond the iteration count and
// odd partitions must not change the result.
func TestManyWorkersStillExact(t *testing.T) {
	sys := load(t, doallSrc)
	serial := serialRun(t, sys)
	for _, workers := range []int{1, 3, 8, 64, 100} {
		rep, err := sys.ExecutePlan(scaf.SchemeSCAF, runtime.Config{Workers: workers, MinIters: 2})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(rep.Output, serial.Output) || rep.MemDigest != serial.Mem.Digest() {
			t.Errorf("workers=%d: diverged from serial", workers)
		}
	}
}

// TestOutputInsideLoopCommitsInOrder: prints inside a speculated loop
// must appear in iteration order.
func TestOutputInsideLoopCommitsInOrder(t *testing.T) {
	src := `
int a[32];
void main() {
    for (int i = 0; i < 32; i++) {
        a[i] = i * i;
        print(a[i]);
    }
}
`
	sys := load(t, src)
	serial := serialRun(t, sys)
	rep, err := sys.ExecutePlan(scaf.SchemeSCAF, runtime.Config{Workers: 4, MinIters: 2})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if !reflect.DeepEqual(rep.Output, serial.Output) {
		t.Errorf("output order diverged: got %v want %v", rep.Output, serial.Output)
	}
	if rep.SpecIters == 0 {
		t.Errorf("loop was not speculated: %+v", rep.Loops)
	}
}
