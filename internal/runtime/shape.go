package runtime

import (
	"fmt"

	"scaf/internal/cfg"
	"scaf/internal/ir"
)

// Shape is a canonical counted loop the executor knows how to chunk: a
// single header phi (the induction variable), a single latch whose
// incoming value is phi+step for a constant step, a loop-invariant bound
// compared against the phi in the header, exits only through the header,
// and no allocation anywhere a speculated iteration can reach. Everything
// else about the body — nested branches, body phis, calls — is fair game,
// because within one iteration the fork executes it exactly like the
// serial interpreter would.
type Shape struct {
	Loop   *cfg.Loop
	Header *ir.Block
	Latch  *ir.Block
	Body   *ir.Block
	Exit   *ir.Block
	// Phi is the induction phi; Next its latch increment (phi+Step); Cmp
	// the header's bound check, branching to Body when true.
	Phi, Next, Cmp *ir.Instr
	Bound          ir.Value
	Step           int64
	Op             ir.CmpOp
}

// maxTrip bounds trip counts the executor will chunk — anything larger is
// declined rather than risking int64 overflow in iteration arithmetic.
const maxTrip = int64(1) << 32

// Recognize checks l against the canonical shape, returning the shape or
// a refusal reason. The checks are purely structural: no analysis result
// (and so no lying speculation module) can make an ineligible loop pass.
func Recognize(l *cfg.Loop) (*Shape, string) {
	if len(l.Latches) != 1 {
		return nil, fmt.Sprintf("%d latches", len(l.Latches))
	}
	s := &Shape{Loop: l, Header: l.Header, Latch: l.Latches[0]}

	// Exits only from the header, through a cond-br to (body, exit).
	for b := range l.Blocks {
		for _, succ := range b.Succs {
			if !l.Blocks[succ] && b != l.Header {
				return nil, fmt.Sprintf("side exit from %s", b)
			}
		}
	}
	if len(s.Header.Instrs) == 0 {
		return nil, "empty header"
	}
	term := s.Header.Instrs[len(s.Header.Instrs)-1]
	if term.Op != ir.OpCondBr || len(s.Header.Succs) != 2 {
		return nil, "header does not end in cond-br"
	}
	s.Body, s.Exit = s.Header.Succs[0], s.Header.Succs[1]
	if !l.Blocks[s.Body] || l.Blocks[s.Exit] {
		return nil, "header successors not (body, exit)"
	}

	// Exactly one header phi: the induction variable.
	var phis []*ir.Instr
	for _, in := range s.Header.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		phis = append(phis, in)
	}
	if len(phis) != 1 {
		return nil, fmt.Sprintf("%d header phis (loop-carried values)", len(phis))
	}
	s.Phi = phis[0]
	if ir.Equal(s.Phi.Ty, ir.Float) {
		return nil, "float induction variable"
	}

	// Latch incoming must be phi+constant.
	inc := ir.PhiIncoming(s.Phi, s.Latch)
	next, ok := inc.(*ir.Instr)
	if !ok || next.Op != ir.OpBin || next.Bin != ir.Add {
		return nil, "latch value is not an increment"
	}
	var stepV ir.Value
	switch {
	case next.Args[0] == ir.Value(s.Phi):
		stepV = next.Args[1]
	case next.Args[1] == ir.Value(s.Phi):
		stepV = next.Args[0]
	default:
		return nil, "increment does not step the induction phi"
	}
	stepC, ok := stepV.(*ir.ConstInt)
	if !ok || stepC.V == 0 {
		return nil, "non-constant or zero step"
	}
	s.Next, s.Step = next, stepC.V

	// Header condition: cmp(phi, loop-invariant bound).
	cmp, ok := term.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpCmp || cmp.Blk != s.Header {
		return nil, "header condition is not a header compare"
	}
	if cmp.Args[0] != ir.Value(s.Phi) {
		return nil, "compare does not test the induction phi"
	}
	switch cmp.Cmp {
	case ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.Ne:
	default:
		return nil, "unsupported compare for trip counting"
	}
	s.Cmp, s.Op, s.Bound = cmp, cmp.Cmp, cmp.Args[1]
	if bi, ok := s.Bound.(*ir.Instr); ok && l.Blocks[bi.Blk] {
		return nil, "loop-variant bound"
	}

	// No allocation reachable from a speculated iteration: forks cannot
	// extend the parent's address space without perturbing object
	// identity, so allocating loops are never speculated.
	if loopAllocates(l) {
		return nil, "allocates memory"
	}
	return s, ""
}

// Trip computes the exact iteration count for runtime init and bound
// values, or reports that the loop cannot be counted (wrong-direction
// step, non-divisible != bound, or an absurd count).
func (s *Shape) Trip(init, bound int64) (int64, bool) {
	if init > maxTrip || init < -maxTrip || bound > maxTrip || bound < -maxTrip {
		return 0, false
	}
	step := s.Step
	var n int64
	switch s.Op {
	case ir.Lt:
		if step <= 0 {
			return 0, false
		}
		if init >= bound {
			return 0, true
		}
		n = ceilDiv(bound-init, step)
	case ir.Le:
		if step <= 0 {
			return 0, false
		}
		if init > bound {
			return 0, true
		}
		n = ceilDiv(bound-init+1, step)
	case ir.Gt:
		if step >= 0 {
			return 0, false
		}
		if init <= bound {
			return 0, true
		}
		n = ceilDiv(init-bound, -step)
	case ir.Ge:
		if step >= 0 {
			return 0, false
		}
		if init < bound {
			return 0, true
		}
		n = ceilDiv(init-bound+1, -step)
	case ir.Ne:
		switch {
		case step > 0 && bound > init && (bound-init)%step == 0:
			n = (bound - init) / step
		case step < 0 && bound < init && (init-bound)%(-step) == 0:
			n = (init - bound) / (-step)
		default:
			return 0, false
		}
	default:
		return 0, false
	}
	if n < 0 || n > maxTrip {
		return 0, false
	}
	return n, true
}

// Ind returns the induction value at the start of (0-based) iteration k.
func (s *Shape) Ind(init, k int64) int64 { return init + k*s.Step }

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// loopAllocates reports whether the loop body — or any function it can
// statically reach — allocates or frees memory.
func loopAllocates(l *cfg.Loop) bool {
	memo := map[*ir.Func]int{} // 0 unvisited, 1 clean/in-progress, 2 allocates
	var fnAllocates func(f *ir.Func) bool
	fnAllocates = func(f *ir.Func) bool {
		switch memo[f] {
		case 1:
			return false
		case 2:
			return true
		}
		memo[f] = 1 // optimistic for recursive cycles
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpAlloca, ir.OpMalloc, ir.OpFree:
					memo[f] = 2
					return true
				case ir.OpCall:
					if in.Callee != nil && fnAllocates(in.Callee) {
						memo[f] = 2
						return true
					}
				}
			}
		}
		return false
	}
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpAlloca, ir.OpMalloc, ir.OpFree:
				return true
			case ir.OpCall:
				if in.Callee != nil && fnAllocates(in.Callee) {
					return true
				}
			}
		}
	}
	return false
}
