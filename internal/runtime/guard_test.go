package runtime

import (
	"reflect"
	"testing"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/interp"
	"scaf/internal/lower"
	"scaf/internal/pdg"
	"scaf/internal/recovery"
)

// depSrc carries a genuine cross-iteration flow dependence: iteration i
// reads a[i-1], written by iteration i-1. Chunked execution against the
// pre-loop snapshot computes garbage for every chunk after the first.
const depSrc = `
int a[64];
void main() {
    a[0] = 1;
    for (int i = 1; i < 64; i++) {
        a[i] = a[i - 1] + i;
    }
    print(a[63]);
}
`

// forcePlans marks every loop DOALL by giving it an empty query set — the
// runtime analogue of an analysis stack that lied about every dependence.
// Structural shape checks still apply.
func forcePlans(t *testing.T, src string) (*cfg.Program, []LoopPlan) {
	t.Helper()
	mod, err := lower.Compile("guard-test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog := cfg.NewProgram(mod)
	var plans []LoopPlan
	for _, f := range mod.Funcs {
		for _, l := range prog.Forests[f].All {
			plans = append(plans, LoopPlan{Loop: l, Res: &pdg.LoopResult{Loop: l}, Plan: &pdg.Plan{}})
		}
	}
	if len(plans) == 0 {
		t.Fatal("no loops found")
	}
	return prog, plans
}

func serialRef(t *testing.T, prog *cfg.Program) *interp.Result {
	t.Helper()
	res, err := interp.Run(prog.Mod, interp.Options{})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	return res
}

// TestAbortNeverPublishesPartialWrites pins the only-publish-complete
// rule at the runtime layer: when speculation on a genuinely dependent
// loop aborts, the aborted chunks' journals must not reach memory, the
// shared cache must stay untainted, and serial re-execution must make the
// final state byte-equal to the serial reference.
func TestAbortNeverPublishesPartialWrites(t *testing.T) {
	prog, plans := forcePlans(t, depSrc)
	serial := serialRef(t, prog)

	q := recovery.New()
	sc := core.NewSharedCache()
	sc.SetRevoker(q)
	rep, err := Execute(prog, plans, Config{Workers: 4, MinIters: 2, Quarantine: q, Cache: sc})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if rep.Misspecs == 0 || rep.AbortedChunks == 0 {
		t.Fatalf("expected a misspeculation, got %+v", rep)
	}
	if !reflect.DeepEqual(rep.Output, serial.Output) {
		t.Errorf("aborted run published partial state: output %v want %v", rep.Output, serial.Output)
	}
	if rep.MemDigest != serial.Mem.Digest() {
		t.Errorf("aborted run published partial writes (memory digest mismatch)")
	}
	if na, nm := sc.Len(); na != 0 || nm != 0 {
		t.Errorf("abort tainted the shared cache: %d alias + %d modref entries", na, nm)
	}
	// The fabricated plan has no assertions to attribute, so the loop
	// must be disabled rather than retried forever.
	disabled := false
	for _, ls := range rep.Loops {
		if ls.Refusal == "disabled after unattributable abort" {
			disabled = true
		}
	}
	if !disabled {
		t.Errorf("loop not disabled after unattributable abort: %+v", rep.Loops)
	}
}

// TestBrokenCommitGuardCorrupts proves the previous test has teeth: with
// the commit guard deliberately disabled, the same program publishes the
// aborted-range journals and the result visibly diverges from serial.
func TestBrokenCommitGuardCorrupts(t *testing.T) {
	prog, plans := forcePlans(t, depSrc)
	serial := serialRef(t, prog)

	rep, err := Execute(prog, plans, Config{Workers: 4, MinIters: 2, disableCommitGuard: true})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if reflect.DeepEqual(rep.Output, serial.Output) && rep.MemDigest == serial.Mem.Digest() {
		t.Fatalf("broken commit guard still produced the serial result — the guard regression test has no teeth")
	}
}

// TestCommittedPrefixSurvives: only the chunks before the first conflict
// commit; their work is counted as speculative iterations and the rest is
// re-executed serially, summing to the loop's trip count.
func TestCommittedPrefixSurvives(t *testing.T) {
	prog, plans := forcePlans(t, depSrc)
	rep, err := Execute(prog, plans, Config{Workers: 4, MinIters: 2})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	var st *LoopStats
	for i := range rep.Loops {
		if rep.Loops[i].Misspecs > 0 {
			st = &rep.Loops[i]
		}
	}
	if st == nil {
		t.Fatalf("no misspeculated loop: %+v", rep.Loops)
	}
	if st.SpecIters+st.SerialIters != 63 {
		t.Errorf("spec (%d) + serial (%d) iterations != trip 63", st.SpecIters, st.SerialIters)
	}
	if st.SpecIters == 0 {
		t.Errorf("conflict-free first chunk should have committed, got %+v", st)
	}
}
