package runtime_test

import (
	"reflect"
	"strings"
	"testing"

	"scaf"
	"scaf/internal/core"
	"scaf/internal/recovery"
	"scaf/internal/runtime"
)

// stressSrc mixes truly parallel loops with a genuinely dependent one, so
// a lying dependence module can push the executor into speculating the
// dependent loop and the commit guard has something real to catch.
const stressSrc = `
int a[128];
int b[128];
int c[128];
void main() {
    for (int i = 0; i < 128; i++) {
        a[i] = i * 5 - 3;
        b[i] = i * i;
    }
    for (int i = 0; i < 128; i++) {
        c[i] = a[i] + b[i] * 2;
    }
    for (int i = 1; i < 128; i++) {
        c[i] = c[i - 1] + a[i];
    }
    int s = 0;
    for (int i = 0; i < 128; i++) {
        s = s + c[i];
    }
    print(s);
    print(c[127]);
}
`

// TestChaosStressConvergesToSerial is the -race stress test: 8-worker
// speculative execution with recovery.Chaos injecting lying dependence
// answers. Every seeded run must converge to the fault-free serial
// reference byte-exactly, with the quarantine holding only chaos lies and
// the shared cache free of entries predicated on them.
func TestChaosStressConvergesToSerial(t *testing.T) {
	sys := load(t, stressSrc)
	serial := serialRun(t, sys)

	misspecs := int64(0)
	for seed := uint64(1); seed <= 12; seed++ {
		chaos := &recovery.Chaos{Seed: seed, WrongEvery: 2}
		q := recovery.New()
		sc := core.NewSharedCache()
		cfg := runtime.Config{Workers: 8, MinIters: 2, Quarantine: q, Cache: sc}
		rep, err := sys.ExecutePlan(scaf.SchemeSCAF, cfg, scaf.WithExtraModules(chaos))
		if err != nil {
			t.Fatalf("seed %d: execute: %v", seed, err)
		}
		if !reflect.DeepEqual(rep.Output, serial.Output) {
			t.Errorf("seed %d: output diverged from fault-free serial: got %v want %v",
				seed, rep.Output, serial.Output)
		}
		if rep.MemDigest != serial.Mem.Digest() {
			t.Errorf("seed %d: memory diverged from fault-free serial", seed)
		}
		misspecs += rep.Misspecs

		// Quarantine consistency: everything withdrawn must be a chaos
		// lie — misspeculation may never discredit an honest assertion on
		// the training input.
		snap := q.Snapshot()
		for _, key := range snap.Asserts {
			if !strings.HasPrefix(key, recovery.NameChaos+"/") {
				t.Errorf("seed %d: quarantined a non-chaos assertion: %s", seed, key)
			}
		}
		if len(snap.Modules) != 0 {
			t.Errorf("seed %d: unexpected module quarantine: %v", seed, snap.Modules)
		}
		if rep.Misspecs > 0 && len(snap.Asserts) == 0 {
			t.Errorf("seed %d: misspeculated %d times but quarantined nothing", seed, rep.Misspecs)
		}
	}
	if misspecs == 0 {
		t.Fatalf("no seed forced a misspeculation — the stress test exercised nothing")
	}
}

// TestChaosQuarantineConverges: repeated executions sharing one
// quarantine and cache must converge — every misspeculating run withdraws
// at least one fresh lie (monotone progress), so after finitely many runs
// the chaos module has nothing believable left and execution is
// misspeculation-free. A single round is NOT always enough: a second lie
// on a different instruction pair can re-cover the same dependence.
func TestChaosQuarantineConverges(t *testing.T) {
	sys := load(t, stressSrc)
	serial := serialRun(t, sys)

	for seed := uint64(1); seed <= 12; seed++ {
		chaos := &recovery.Chaos{Seed: seed, WrongEvery: 2}
		q := recovery.New()
		sc := core.NewSharedCache()
		prevQuarantined := 0
		converged := false
		for round := 1; round <= 10; round++ {
			rep, err := sys.ExecutePlan(scaf.SchemeSCAF,
				runtime.Config{Workers: 8, MinIters: 2, Quarantine: q, Cache: sc},
				scaf.WithExtraModules(chaos))
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if !reflect.DeepEqual(rep.Output, serial.Output) || rep.MemDigest != serial.Mem.Digest() {
				t.Fatalf("seed %d round %d: diverged from serial reference", seed, round)
			}
			nq := len(q.AssertKeys())
			if rep.Misspecs == 0 {
				converged = true
				break
			}
			if nq <= prevQuarantined {
				t.Fatalf("seed %d round %d: misspeculated without quarantining anything new (%d asserts)",
					seed, round, nq)
			}
			prevQuarantined = nq
		}
		if !converged {
			t.Errorf("seed %d: still misspeculating after 10 rounds", seed)
		}
	}
}
