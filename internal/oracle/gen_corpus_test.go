package oracle

import (
	"fmt"
	"os"
	"testing"

	"scaf/internal/mcgen"
)

// TestGenCorpus regenerates testdata/corpus. Guarded: only runs when
// SCAF_GEN_CORPUS=1.
func TestGenCorpus(t *testing.T) {
	if os.Getenv("SCAF_GEN_CORPUS") != "1" {
		t.Skip("set SCAF_GEN_CORPUS=1 to regenerate the corpus")
	}
	if err := os.MkdirAll("testdata/corpus", 0o755); err != nil {
		t.Fatal(err)
	}
	fast := FastConfig()
	written := 0
	seenShape := map[string]bool{}
	for seed := int64(1); seed <= 400 && written < 12; seed++ {
		src := mcgen.New(seed).Program()
		base, err := CheckProgram(fast, "corpus", src)
		if err != nil || base.Failed() || base.Queries < 2 {
			continue
		}
		// Keep at least half the original query mass so the shrunk
		// program still exercises the analysis meaningfully.
		minQueries := base.Queries / 2
		if minQueries < 2 {
			minQueries = 2
		}
		interesting := func(cand string) bool {
			rep, err := CheckProgram(fast, "corpus", cand)
			return err == nil && !rep.Failed() && rep.Queries >= minQueries
		}
		red := Reduce(src, interesting)
		rep, err := CheckProgram(FullConfig(), "corpus", red.Source)
		if err != nil || rep.Failed() {
			t.Logf("seed %d: reduced program not full-oracle clean, skipping", seed)
			continue
		}
		// Dedup structurally identical shrunk programs across seeds.
		if seenShape[red.Source] {
			continue
		}
		seenShape[red.Source] = true
		name := fmt.Sprintf("seed%04d-q%d", seed, minQueries)
		out := fmt.Sprintf("// shrunk from mcgen seed %d: keeps >= %d dependence queries\n// (%d -> %d statements in %d oracle evaluations)\n\n%s",
			seed, minQueries, CountStmts(src), red.Stmts, red.Tests, red.Source)
		if err := os.WriteFile("testdata/corpus/"+name+".mc", []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		written++
		t.Logf("wrote %s (%d stmts, %d queries)", name, red.Stmts, rep.Queries)
	}
	if written < 10 {
		t.Fatalf("only wrote %d corpus programs, want >= 10", written)
	}
}
