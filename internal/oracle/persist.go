package oracle

// The persist pass is the warm-restart analogue of checkFleetDrift: it
// proves that a persistent instance rebooted from its cache directory is
// byte-indistinguishable from a cold one. One persistent fleet-of-one
// instance serves a session and is drained (writing its snapshot); a
// second instance boots from the same directory and must serve the exact
// bytes a cold single instance serves — with the loop lookaside actually
// hitting the reloaded entries, so the equality is not achieved by
// quietly recomputing. The restart deliberately straddles an /observe
// quarantine: after reload the revoked entries must be physical misses
// (absent from the shard and un-reinsertable), and the fresh session must
// reproduce the clean-slate bytes.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"scaf/internal/fleet"
	"scaf/internal/recovery"
	"scaf/internal/server"
)

func checkPersist(cfg Config, rep *Report, a *analysis) {
	dir, err := os.MkdirTemp("", "scaf-oracle-persist-")
	if err != nil {
		rep.violate(Violation{Kind: KindDriftPersist, Detail: fmt.Sprintf("temp cache dir: %v", err)})
		return
	}
	defer os.RemoveAll(dir)

	shutdown := func(srv *server.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	bootPersist := func() *server.Server {
		return server.New(server.Config{Workers: 2, Fleet: &server.FleetConfig{Self: "p0", CacheDir: dir}})
	}

	refSrv := server.New(server.Config{Workers: 2})
	refH := refSrv.Handler()
	defer shutdown(refSrv)

	srv1 := bootPersist()
	h1 := srv1.Handler()

	createBody, _ := json.Marshal(map[string]any{
		"name": a.name, "source": a.src, "plan": "off",
		"hot_loops": map[string]float64{
			"min_weight_frac": cfg.HotLoops.MinWeightFrac,
			"min_avg_iters":   cfg.HotLoops.MinAvgIters,
		},
	})
	refStatus, refBody := do(refH, "POST", "/sessions", createBody)
	pStatus, pBody := do(h1, "POST", "/sessions", createBody)
	if refStatus != pStatus || !bytes.Equal(refBody, pBody) {
		shutdown(srv1)
		rep.violate(Violation{Kind: KindDriftPersist,
			Detail: fmt.Sprintf("session create diverges: cold %d %s, persistent %d %s",
				refStatus, refBody, pStatus, pBody)})
		return
	}
	if refStatus != http.StatusCreated {
		shutdown(srv1)
		return // load failure is covered by the server pass
	}
	var info server.SessionInfo
	if err := json.Unmarshal(refBody, &info); err != nil {
		shutdown(srv1)
		rep.violate(Violation{Kind: KindDriftPersist, Detail: fmt.Sprintf("bad session info: %v", err)})
		return
	}

	// Cold phase: collect golds from the reference while the persistent
	// instance warms its shard with the same traffic.
	type gold struct {
		scheme string
		path   string
		body   []byte
		want   []byte
	}
	var golds []gold
	for _, scheme := range cfg.Schemes {
		reqBody, _ := json.Marshal(map[string]any{"scheme": scheme.String()})
		path := "/sessions/" + info.ID + "/analyze"
		rs, rb := do(refH, "POST", path, reqBody)
		ps, pb := do(h1, "POST", path, reqBody)
		if rs != ps || !bytes.Equal(rb, pb) {
			rep.violate(Violation{Kind: KindDriftPersist, Scheme: scheme.String(),
				Detail: fmt.Sprintf("cold-phase analyze diverges:\n  cold:       %d %s\n  persistent: %d %s", rs, rb, ps, pb)})
			continue
		}
		if rs != http.StatusOK {
			continue
		}
		golds = append(golds, gold{scheme: scheme.String(), path: path, body: reqBody, want: rb})
		var resp server.AnalyzeResponse
		if err := json.Unmarshal(rb, &resp); err != nil {
			rep.violate(Violation{Kind: KindDriftPersist, Scheme: scheme.String(),
				Detail: fmt.Sprintf("bad analyze response: %v", err)})
			continue
		}
		n := 0
		for _, lr := range resp.Results {
			for _, q := range lr.Queries {
				if n >= fleetQueryCap {
					break
				}
				n++
				qb, _ := json.Marshal(server.QueryRequest{
					Scheme: scheme.String(), Loop: lr.Loop, I1: q.I1, I2: q.I2, Rel: q.Rel,
				})
				qpath := "/sessions/" + info.ID + "/query"
				rqs, rqb := do(refH, "POST", qpath, qb)
				if rqs == http.StatusOK {
					golds = append(golds, gold{scheme: scheme.String(), path: qpath, body: qb, want: rqb})
				}
			}
		}
	}

	// Straddle the restart across a quarantine: violate one supporting
	// assertion on the persistent instance before it drains.
	var revKey string
	for _, e := range srv1.Fleet().Local().SnapshotEntries() {
		if len(e.Asserts) > 0 {
			revKey = e.Asserts[0]
			break
		}
	}
	if revKey != "" {
		ob, _ := json.Marshal(server.ObserveRequest{Violations: []server.WireViolation{
			{Assertion: revKey, Detail: "persist oracle: straddled restart"}}})
		if st, body := do(h1, "POST", "/sessions/"+info.ID+"/observe", ob); st != http.StatusOK {
			rep.violate(Violation{Kind: KindDriftPersist,
				Detail: fmt.Sprintf("observe before drain failed: %d %s", st, body)})
			revKey = ""
		}
	}

	shutdown(srv1) // graceful drain: writes the snapshot

	srv2 := bootPersist()
	h2 := srv2.Handler()
	defer shutdown(srv2)
	local := srv2.Fleet().Local()

	// Physical-miss proof for the straddled quarantine: the revoked
	// entries did not survive the reload and cannot come back.
	if revKey != "" {
		for _, e := range local.SnapshotEntries() {
			for _, k := range e.Asserts {
				if k == revKey {
					rep.violate(Violation{Kind: KindDriftPersist,
						Detail: fmt.Sprintf("entry %q predicated on revoked %q resurrected across restart", e.Key, k)})
				}
			}
		}
		if !local.AnyRevoked([]string{revKey}) {
			rep.violate(Violation{Kind: KindDriftPersist,
				Detail: fmt.Sprintf("revocation of %q did not survive the restart", revKey)})
		}
		if local.Put(fleet.Entry{Key: "oracle|probe|fp|x", Value: []byte("{}"), Asserts: []string{revKey}}) {
			rep.violate(Violation{Kind: KindDriftPersist,
				Detail: fmt.Sprintf("reloaded shard re-admitted an entry predicated on revoked %q", revKey)})
		} else {
			rep.PersistBlocked++
		}
	}

	// Count the loop entries a fresh clean session can actually match:
	// same digest space, clean quarantine fingerprint. If any survived,
	// the warm replay below must hit the lookaside at least once.
	cleanFP := recovery.New().Fingerprint()
	survivingLoops := 0
	for _, e := range local.SnapshotEntries() {
		parts := strings.SplitN(e.Key, "|", 4)
		if len(parts) == 4 && parts[2] == cleanFP && strings.HasPrefix(parts[3], "loop|") {
			survivingLoops++
		}
	}

	// Warm phase: a fresh instance, a fresh session (same ID sequence),
	// and every gold must be served byte-identically.
	wStatus, wBody := do(h2, "POST", "/sessions", createBody)
	if wStatus != refStatus || !bytes.Equal(wBody, refBody) {
		rep.violate(Violation{Kind: KindDriftPersist,
			Detail: fmt.Sprintf("warm session create diverges: cold %d %s, warm %d %s",
				refStatus, refBody, wStatus, wBody)})
		return
	}
	for _, g := range golds {
		ws, wb := do(h2, "POST", g.path, g.body)
		if ws != http.StatusOK || !bytes.Equal(wb, g.want) {
			rep.violate(Violation{Kind: KindDriftPersist, Scheme: g.scheme,
				Detail: fmt.Sprintf("warm-restart answer diverges from cold:\n  cold: %s\n  warm: %d %s", g.want, ws, wb)})
		}
	}

	// Nonvacuity: the equality must come from the snapshot, not from
	// silent recomputation.
	ms, mb := do(h2, "GET", "/metrics", nil)
	var m server.MetricsResponse
	if ms != http.StatusOK || json.Unmarshal(mb, &m) != nil {
		rep.violate(Violation{Kind: KindDriftPersist, Detail: fmt.Sprintf("warm metrics unreadable: %d %s", ms, mb)})
		return
	}
	rep.PersistWarmHits += m.Server.FleetLoopHits
	if survivingLoops > 0 && m.Server.FleetLoopHits == 0 {
		rep.violate(Violation{Kind: KindDriftPersist,
			Detail: fmt.Sprintf("%d clean loop entries survived the restart but the warm replay never hit the lookaside", survivingLoops)})
	}
	if m.Persist == nil || m.Persist.Loaded == 0 && survivingLoops > 0 {
		rep.violate(Violation{Kind: KindDriftPersist,
			Detail: fmt.Sprintf("warm instance reports no loaded snapshot entries: %+v", m.Persist)})
	}
}
