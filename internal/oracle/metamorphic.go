package oracle

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"regexp"
	"sort"
	"strings"

	"scaf"
	"scaf/internal/lang"
)

// This file is the metamorphic layer: semantics-preserving MC source
// transforms under which analysis answers must be preserved. A transform's
// validity is never assumed — the oracle re-runs the interpreter on the
// transformed program and compares observable output before any answer
// comparison counts (checkTransform below).

// CompareMode selects how answers on the transformed program are compared
// against the original's.
type CompareMode int

const (
	// CompareExactRename demands byte-identical wire results for every
	// scheme after mapping renamed identifiers back to their originals.
	// Valid only for transforms that change nothing but names.
	CompareExactRename CompareMode = iota
	// CompareVerdicts aligns loops by name and demands identical verdict
	// sequences (relation, mod-ref result, NoDep, cost) for every scheme.
	// Instruction IDs may shift, so refs are not compared. Valid for
	// transforms that leave every loop's memory-operation sequence and its
	// profile (iteration counts, observed dependences) intact.
	CompareVerdicts
	// CompareVerdictsCAF is CompareVerdicts restricted to the
	// non-speculative CAF scheme, for transforms that legitimately perturb
	// profiles (loop peeling shifts iteration counts) but cannot change
	// static analysis facts.
	CompareVerdictsCAF
)

// Transform is one semantics-preserving source rewrite. Apply mutates the
// freshly parsed file in place and reports whether it found anything to
// transform; rename is non-nil only for renaming transforms.
type Transform struct {
	Name string
	Mode CompareMode
	// salt decorrelates the per-transform RNG streams derived from one
	// program hash.
	salt  int64
	Apply func(f *lang.File, rng *rand.Rand) (rename map[string]string, applied bool)
}

// Transforms returns the full metamorphic catalog.
func Transforms() []Transform {
	return []Transform{
		{Name: "rename", Mode: CompareExactRename, salt: 0x5e11, Apply: applyRename},
		{Name: "deadcode", Mode: CompareVerdicts, salt: 0xdead, Apply: applyDeadCode},
		{Name: "reorder", Mode: CompareVerdicts, salt: 0x0a0b, Apply: applyReorder},
		{Name: "peel", Mode: CompareVerdictsCAF, salt: 0x9ee1, Apply: applyPeel},
	}
}

// TransformByName returns the named transform from the catalog.
func TransformByName(name string) (Transform, bool) {
	for _, tr := range Transforms() {
		if tr.Name == name {
			return tr, true
		}
	}
	return Transform{}, false
}

// checkTransform applies one transform and compares answers per its mode.
func checkTransform(cfg Config, rep *Report, base *analysis, tr Transform) {
	f, err := lang.Parse(base.name, base.src)
	if err != nil {
		rep.violate(Violation{Kind: KindTransformInvalid, Transform: tr.Name,
			Detail: fmt.Sprintf("reparse of original failed: %v", err)})
		return
	}
	h := fnv.New64a()
	h.Write([]byte(base.src))
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ tr.salt))
	rename, applied := tr.Apply(f, rng)
	if !applied {
		return
	}
	rep.TransformsApplied++
	if rep.AppliedByTransform == nil {
		rep.AppliedByTransform = map[string]int{}
	}
	rep.AppliedByTransform[tr.Name]++
	out := Print(f)

	ta, err := analyzeSource(cfg, base.name+"+"+tr.Name, out)
	if err != nil {
		rep.violate(Violation{Kind: KindTransformInvalid, Transform: tr.Name,
			Detail: fmt.Sprintf("transformed program does not build/run: %v\n%s", err, out)})
		return
	}
	if !equalOutput(base.output, ta.output) {
		rep.violate(Violation{Kind: KindTransformInvalid, Transform: tr.Name,
			Detail: fmt.Sprintf("observable behavior changed: %q vs %q\n%s", base.output, ta.output, out)})
		return
	}

	switch tr.Mode {
	case CompareExactRename:
		compareExact(cfg, rep, base, ta, tr, rename)
	case CompareVerdicts:
		compareVerdicts(rep, base, ta, tr, cfg.Schemes)
	case CompareVerdictsCAF:
		for _, s := range cfg.Schemes {
			if s == scaf.SchemeCAF {
				compareVerdicts(rep, base, ta, tr, []scaf.Scheme{scaf.SchemeCAF})
				break
			}
		}
	}
}

func equalOutput(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareExact maps renamed identifiers in the transformed wire bytes back
// to the originals and demands byte equality per scheme.
func compareExact(cfg Config, rep *Report, base, ta *analysis, tr Transform, rename map[string]string) {
	back := make(map[string]string, len(rename))
	for oldName, newName := range rename {
		back[newName] = oldName
	}
	for _, scheme := range cfg.Schemes {
		got := mapNames(string(wireJSON(ta.wire[scheme])), back)
		want := string(wireJSON(base.wire[scheme]))
		if got != want {
			rep.violate(Violation{Kind: KindMetamorphic, Scheme: scheme.String(), Transform: tr.Name,
				Detail: fmt.Sprintf("answers changed under renaming:\n  original: %s\n  renamed:  %s\n%s",
					want, got, ta.src)})
			continue
		}
		rep.ComparedLoops += len(base.hot)
	}
}

// mapNames rewrites every whole-word occurrence of a mapped name. Names are
// matched longest-first so a name that prefixes another can never clip it,
// and \b boundaries keep "zz1" from matching inside "zz12".
func mapNames(s string, m map[string]string) string {
	if len(m) == 0 {
		return s
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if len(names[i]) != len(names[j]) {
			return len(names[i]) > len(names[j])
		}
		return names[i] < names[j]
	})
	for i, n := range names {
		names[i] = regexp.QuoteMeta(n)
	}
	re := regexp.MustCompile(`\b(` + strings.Join(names, "|") + `)\b`)
	return re.ReplaceAllStringFunc(s, func(tok string) string { return m[tok] })
}

// verdict is the comparable essence of one resolved query under
// CompareVerdicts: everything except instruction identity.
type verdict struct {
	Rel    string
	Result string
	NoDep  bool
	Cost   float64
}

// compareVerdicts aligns loops by name and compares verdict sequences. A
// loop hot on only one side (a transform can nudge a marginal loop across
// the hot threshold) is skipped, not failed; the seed-sweep test asserts
// the aggregate comparison rate instead.
func compareVerdicts(rep *Report, base, ta *analysis, tr Transform, schemes []scaf.Scheme) {
	for _, scheme := range schemes {
		tw := map[string]int{}
		for i, w := range ta.wire[scheme] {
			tw[w.Loop] = i
		}
		for _, bw := range base.wire[scheme] {
			ti, ok := tw[bw.Loop]
			if !ok {
				continue // left the hot set under the transform
			}
			twr := ta.wire[scheme][ti]
			if len(twr.Queries) != len(bw.Queries) {
				rep.violate(Violation{Kind: KindMetamorphic, Scheme: scheme.String(),
					Transform: tr.Name, Loop: bw.Loop,
					Detail: fmt.Sprintf("query count changed: %d vs %d (mem-op set not preserved)\n%s",
						len(bw.Queries), len(twr.Queries), ta.src)})
				continue
			}
			rep.ComparedLoops++
			for i := range bw.Queries {
				b := verdict{bw.Queries[i].Rel, bw.Queries[i].Result, bw.Queries[i].NoDep, bw.Queries[i].Cost}
				t := verdict{twr.Queries[i].Rel, twr.Queries[i].Result, twr.Queries[i].NoDep, twr.Queries[i].Cost}
				if b != t {
					rep.violate(Violation{Kind: KindMetamorphic, Scheme: scheme.String(),
						Transform: tr.Name, Loop: bw.Loop,
						Detail: fmt.Sprintf("query %d (%s -> %s) changed: %+v vs %+v\n%s",
							i, bw.Queries[i].I1, bw.Queries[i].I2, b, t, ta.src)})
					break
				}
			}
		}
	}
}

// ---- transform: consistent renaming -----------------------------------

// builtins never participate in renaming (they cannot be declared; sema
// rejects shadowing them).
var builtinNames = map[string]bool{
	"main": true, "print": true, "malloc": true, "free": true,
	"sqrt": true, "fabs": true,
}

// collectDeclared gathers every program-declared identifier: globals,
// functions (except main), parameters, and locals, in declaration order.
func collectDeclared(f *lang.File) []string {
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if n != "" && !builtinNames[n] && !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, g := range f.Globals {
		add(g.Name)
	}
	for _, fd := range f.Funcs {
		add(fd.Name)
		for _, p := range fd.Params {
			add(p.Name)
		}
		walkStmt(fd.Body, func(s lang.Stmt) {
			if d, ok := s.(*lang.DeclStmt); ok {
				add(d.Decl.Name)
			}
		})
	}
	return names
}

// freshPrefix picks an identifier prefix no declared name starts with, so
// generated names can never collide with (or word-boundary-match inside)
// program names.
func freshPrefix(f *lang.File, base string) string {
	declared := collectDeclared(f)
	prefix := base
	for {
		clash := false
		for _, n := range declared {
			if strings.HasPrefix(n, prefix) {
				clash = true
				break
			}
		}
		if !clash {
			return prefix
		}
		prefix += "z"
	}
}

// applyRename renames every program-declared identifier injectively,
// leaving main and builtins alone. The returned map is old→new.
func applyRename(f *lang.File, rng *rand.Rand) (map[string]string, bool) {
	names := collectDeclared(f)
	if len(names) == 0 {
		return nil, false
	}
	prefix := freshPrefix(f, "zz")
	// A shuffled numbering keeps the map seed-dependent without risking
	// collisions (names stay distinct by index).
	order := rng.Perm(len(names))
	rename := make(map[string]string, len(names))
	for i, n := range names {
		rename[n] = fmt.Sprintf("%s%d", prefix, order[i])
	}
	ren := func(n string) string {
		if to, ok := rename[n]; ok {
			return to
		}
		return n
	}
	for _, g := range f.Globals {
		g.Name = ren(g.Name)
	}
	for _, fd := range f.Funcs {
		fd.Name = ren(fd.Name)
		for _, p := range fd.Params {
			p.Name = ren(p.Name)
		}
		walkStmt(fd.Body, func(s lang.Stmt) {
			if d, ok := s.(*lang.DeclStmt); ok {
				d.Decl.Name = ren(d.Decl.Name)
			}
			walkStmtExprs(s, func(x lang.Expr) {
				switch x := x.(type) {
				case *lang.Ident:
					x.Name = ren(x.Name)
				case *lang.Call:
					x.Name = ren(x.Name)
				}
			})
		})
	}
	return rename, true
}

// ---- transform: dead-statement insertion ------------------------------

// applyDeadCode inserts a few never-read scalar declarations at random
// block positions. Scalar locals promote to SSA registers (mem2reg), so no
// memory operation is added anywhere and every loop's query set is
// preserved exactly.
func applyDeadCode(f *lang.File, rng *rand.Rand) (map[string]string, bool) {
	prefix := freshPrefix(f, "zzd")
	var blocks []*lang.BlockStmt
	for _, fd := range f.Funcs {
		walkStmt(fd.Body, func(s lang.Stmt) {
			if b, ok := s.(*lang.BlockStmt); ok {
				blocks = append(blocks, b)
			}
		})
	}
	if len(blocks) == 0 {
		return nil, false
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		b := blocks[rng.Intn(len(blocks))]
		pos := rng.Intn(len(b.Stmts) + 1)
		dead := &lang.DeclStmt{Decl: &lang.VarDecl{
			Name: fmt.Sprintf("%s%d", prefix, i),
			TE:   &lang.TypeExpr{Base: lang.KWInt},
			Init: &lang.IntLit{V: int64(rng.Intn(1000))},
		}}
		b.Stmts = append(b.Stmts[:pos], append([]lang.Stmt{dead}, b.Stmts[pos:]...)...)
	}
	return nil, true
}

// ---- transform: independent-statement reordering ----------------------

// pureScalar reports whether x touches no memory: identifiers, literals,
// casts, and arithmetic only — no calls, no indexing, no members, no
// pointer operations.
func pureScalar(x lang.Expr) bool {
	switch x := x.(type) {
	case *lang.Ident:
		return true
	case *lang.IntLit, *lang.FloatLit:
		return true
	case *lang.Unary:
		if x.Op == lang.STAR || x.Op == lang.AMP {
			return false
		}
		return pureScalar(x.X)
	case *lang.Binary:
		return pureScalar(x.X) && pureScalar(x.Y)
	case *lang.CastExpr:
		return pureScalar(x.X)
	}
	return false
}

// scalarEffect classifies a statement as a pure-scalar computation and
// returns the identifiers it reads and the single identifier it writes
// ("" for a read-only statement). ok is false for anything that could
// touch memory or control flow.
func scalarEffect(s lang.Stmt) (reads map[string]bool, writes string, ok bool) {
	reads = map[string]bool{}
	collect := func(x lang.Expr) {
		walkExpr(x, func(e lang.Expr) {
			if id, isID := e.(*lang.Ident); isID {
				reads[id.Name] = true
			}
		})
	}
	switch s := s.(type) {
	case *lang.DeclStmt:
		d := s.Decl
		if d.TE.Stars != 0 || len(d.TE.ArrayLens) != 0 || d.TE.Base == lang.KWStruct {
			return nil, "", false
		}
		if d.Init == nil || !pureScalar(d.Init) {
			return nil, "", false
		}
		collect(d.Init)
		return reads, d.Name, true
	case *lang.ExprStmt:
		a, isAssign := s.X.(*lang.Assign)
		if !isAssign {
			return nil, "", false
		}
		lhs, isIdent := a.LHS.(*lang.Ident)
		if !isIdent || !pureScalar(a.RHS) {
			return nil, "", false
		}
		collect(a.RHS)
		if a.Op != lang.ASSIGN {
			reads[lhs.Name] = true // compound assignment reads its target
		}
		return reads, lhs.Name, true
	}
	return nil, "", false
}

// applyReorder swaps one adjacent pair of independent pure-scalar
// statements. Independence is name-based (write sets disjoint from the
// other's read∪write set), which also blocks any swap that would change
// shadowing. No memory operation moves, so every loop's query set is
// preserved exactly.
func applyReorder(f *lang.File, rng *rand.Rand) (map[string]string, bool) {
	type site struct {
		b *lang.BlockStmt
		i int
	}
	var sites []site
	for _, fd := range f.Funcs {
		walkStmt(fd.Body, func(s lang.Stmt) {
			b, ok := s.(*lang.BlockStmt)
			if !ok {
				return
			}
			for i := 0; i+1 < len(b.Stmts); i++ {
				r1, w1, ok1 := scalarEffect(b.Stmts[i])
				r2, w2, ok2 := scalarEffect(b.Stmts[i+1])
				if !ok1 || !ok2 {
					continue
				}
				if w1 != "" && (r2[w1] || w1 == w2) {
					continue
				}
				if w2 != "" && r1[w2] {
					continue
				}
				sites = append(sites, site{b, i})
			}
		})
	}
	if len(sites) == 0 {
		return nil, false
	}
	s := sites[rng.Intn(len(sites))]
	s.b.Stmts[s.i], s.b.Stmts[s.i+1] = s.b.Stmts[s.i+1], s.b.Stmts[s.i]
	return nil, true
}

// ---- transform: single-iteration loop peeling -------------------------

// peelable recognizes `for (int i = 0; i < N; i++) { straight-line }` with
// a literal N ≥ 4 (so the peeled loop still clears the hot-loop iteration
// threshold) whose body never assigns the counter and contains no control
// flow (so block structure — and with it every loop's name — is
// unchanged).
func peelable(fs *lang.ForStmt) (counter string, bound *lang.IntLit, body *lang.BlockStmt, ok bool) {
	init, isDecl := fs.Init.(*lang.DeclStmt)
	if !isDecl || init.Decl.TE.Stars != 0 || len(init.Decl.TE.ArrayLens) != 0 {
		return "", nil, nil, false
	}
	zero, isZero := init.Decl.Init.(*lang.IntLit)
	if !isZero || zero.V != 0 {
		return "", nil, nil, false
	}
	counter = init.Decl.Name
	cond, isBin := fs.Cond.(*lang.Binary)
	if !isBin || cond.Op != lang.LT {
		return "", nil, nil, false
	}
	lhs, isIdent := cond.X.(*lang.Ident)
	n, isLit := cond.Y.(*lang.IntLit)
	if !isIdent || lhs.Name != counter || !isLit || n.V < 4 {
		return "", nil, nil, false
	}
	post, isAssign := fs.Post.(*lang.Assign)
	if !isAssign || post.Op != lang.PLUSEQ {
		return "", nil, nil, false
	}
	pl, isIdent := post.LHS.(*lang.Ident)
	one, isOne := post.RHS.(*lang.IntLit)
	if !isIdent || pl.Name != counter || !isOne || one.V != 1 {
		return "", nil, nil, false
	}
	body, isBlock := fs.Body.(*lang.BlockStmt)
	if !isBlock {
		return "", nil, nil, false
	}
	for _, s := range body.Stmts {
		switch s := s.(type) {
		case *lang.DeclStmt:
		case *lang.ExprStmt:
			if a, isA := s.X.(*lang.Assign); isA {
				if id, isID := a.LHS.(*lang.Ident); isID && id.Name == counter {
					return "", nil, nil, false
				}
			}
		default:
			return "", nil, nil, false
		}
	}
	return counter, n, body, true
}

// applyPeel peels the first iteration of one eligible loop: a renamed copy
// of the body (counter fixed at 0) is inserted before the loop, and the
// loop starts at 1. Cloned declarations get fresh names, so no scope
// conflicts arise; the loop's own memory operations are untouched. Only
// loops not enclosed by another loop are eligible — peeling a nested loop
// would move its body's memory operations into the enclosing loop's body
// and change that loop's query set.
func applyPeel(f *lang.File, rng *rand.Rand) (map[string]string, bool) {
	prefix := freshPrefix(f, "zzp")
	type site struct {
		b  *lang.BlockStmt
		i  int
		fs *lang.ForStmt
	}
	var sites []site
	var scan func(s lang.Stmt, inLoop bool)
	scan = func(s lang.Stmt, inLoop bool) {
		switch s := s.(type) {
		case *lang.BlockStmt:
			for i, st := range s.Stmts {
				if fs, isFor := st.(*lang.ForStmt); isFor && !inLoop {
					if _, _, _, ok := peelable(fs); ok {
						sites = append(sites, site{s, i, fs})
					}
				}
				scan(st, inLoop)
			}
		case *lang.IfStmt:
			scan(s.Then, inLoop)
			scan(s.Else, inLoop)
		case *lang.WhileStmt:
			scan(s.Body, true)
		case *lang.ForStmt:
			scan(s.Body, true)
		}
	}
	for _, fd := range f.Funcs {
		scan(fd.Body, false)
	}
	if len(sites) == 0 {
		return nil, false
	}
	s := sites[rng.Intn(len(sites))]
	counter, _, body, _ := peelable(s.fs)

	// Fresh names for the counter and every declaration in the body copy.
	sub := map[string]string{counter: prefix + "0"}
	for _, st := range body.Stmts {
		if d, ok := st.(*lang.DeclStmt); ok {
			sub[d.Decl.Name] = fmt.Sprintf("%s%d", prefix, len(sub))
		}
	}
	peeled := []lang.Stmt{&lang.DeclStmt{Decl: &lang.VarDecl{
		Name: sub[counter],
		TE:   &lang.TypeExpr{Base: lang.KWInt},
		Init: &lang.IntLit{V: 0},
	}}}
	for _, st := range body.Stmts {
		peeled = append(peeled, cloneStmtRenamed(st, sub))
	}

	// Loop now starts at iteration 1.
	s.fs.Init.(*lang.DeclStmt).Decl.Init = &lang.IntLit{V: 1}

	rest := append([]lang.Stmt{}, s.b.Stmts[s.i:]...)
	s.b.Stmts = append(append(s.b.Stmts[:s.i:s.i], peeled...), rest...)
	return nil, true
}

// cloneStmtRenamed deep-copies a straight-line statement, renaming
// identifiers per sub. Only the statement kinds peelable admits appear.
func cloneStmtRenamed(s lang.Stmt, sub map[string]string) lang.Stmt {
	switch s := s.(type) {
	case *lang.DeclStmt:
		d := *s.Decl
		if to, ok := sub[d.Name]; ok {
			d.Name = to
		}
		d.Init = cloneExprRenamed(d.Init, sub)
		return &lang.DeclStmt{Decl: &d}
	case *lang.ExprStmt:
		return &lang.ExprStmt{X: cloneExprRenamed(s.X, sub)}
	}
	panic(fmt.Sprintf("oracle: unclonable statement %T", s))
}

// cloneExprRenamed deep-copies an expression, renaming identifiers per sub.
func cloneExprRenamed(x lang.Expr, sub map[string]string) lang.Expr {
	if x == nil {
		return nil
	}
	switch x := x.(type) {
	case *lang.Ident:
		c := *x
		if to, ok := sub[c.Name]; ok {
			c.Name = to
		}
		return &c
	case *lang.IntLit:
		c := *x
		return &c
	case *lang.FloatLit:
		c := *x
		return &c
	case *lang.Unary:
		c := *x
		c.X = cloneExprRenamed(x.X, sub)
		return &c
	case *lang.Binary:
		c := *x
		c.X = cloneExprRenamed(x.X, sub)
		c.Y = cloneExprRenamed(x.Y, sub)
		return &c
	case *lang.Assign:
		c := *x
		c.LHS = cloneExprRenamed(x.LHS, sub)
		c.RHS = cloneExprRenamed(x.RHS, sub)
		return &c
	case *lang.CastExpr:
		c := *x
		c.X = cloneExprRenamed(x.X, sub)
		return &c
	case *lang.Call:
		c := *x
		c.Args = make([]lang.Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = cloneExprRenamed(a, sub)
		}
		return &c
	case *lang.Index:
		c := *x
		c.X = cloneExprRenamed(x.X, sub)
		c.Idx = cloneExprRenamed(x.Idx, sub)
		return &c
	case *lang.Member:
		c := *x
		c.X = cloneExprRenamed(x.X, sub)
		return &c
	}
	panic(fmt.Sprintf("oracle: unclonable expression %T", x))
}

// ---- AST walking -------------------------------------------------------

// walkStmt visits s and every statement beneath it, parents first.
func walkStmt(s lang.Stmt, visit func(lang.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch s := s.(type) {
	case *lang.BlockStmt:
		for _, st := range s.Stmts {
			walkStmt(st, visit)
		}
	case *lang.IfStmt:
		walkStmt(s.Then, visit)
		walkStmt(s.Else, visit)
	case *lang.WhileStmt:
		walkStmt(s.Body, visit)
	case *lang.ForStmt:
		walkStmt(s.Init, visit)
		walkStmt(s.Body, visit)
	}
}

// walkStmtExprs visits every expression directly attached to s (not those
// of nested statements; pair with walkStmt for a full traversal).
func walkStmtExprs(s lang.Stmt, visit func(lang.Expr)) {
	switch s := s.(type) {
	case *lang.DeclStmt:
		walkExpr(s.Decl.Init, visit)
	case *lang.ExprStmt:
		walkExpr(s.X, visit)
	case *lang.IfStmt:
		walkExpr(s.Cond, visit)
	case *lang.WhileStmt:
		walkExpr(s.Cond, visit)
	case *lang.ForStmt:
		walkExpr(s.Cond, visit)
		walkExpr(s.Post, visit)
	case *lang.ReturnStmt:
		walkExpr(s.X, visit)
	}
}

// walkExpr visits x and every subexpression.
func walkExpr(x lang.Expr, visit func(lang.Expr)) {
	if x == nil {
		return
	}
	visit(x)
	switch x := x.(type) {
	case *lang.Unary:
		walkExpr(x.X, visit)
	case *lang.Binary:
		walkExpr(x.X, visit)
		walkExpr(x.Y, visit)
	case *lang.Assign:
		walkExpr(x.LHS, visit)
		walkExpr(x.RHS, visit)
	case *lang.CastExpr:
		walkExpr(x.X, visit)
	case *lang.Call:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *lang.Index:
		walkExpr(x.X, visit)
		walkExpr(x.Idx, visit)
	case *lang.Member:
		walkExpr(x.X, visit)
	}
}
