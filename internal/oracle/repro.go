package oracle

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// FormatRepro renders a self-contained reproducer file: the reduced
// program preceded by a comment header recording where it came from and
// what it violates (MC supports // comments, so the file feeds straight
// back into `scaf-oracle -run`).
func FormatRepro(rep *Report, red ReduceResult) string {
	var b strings.Builder
	b.WriteString("// scaf-oracle reproducer\n")
	if rep.Seed != 0 || strings.HasPrefix(rep.Name, "seed") {
		fmt.Fprintf(&b, "// origin: mcgen seed %d\n", rep.Seed)
	} else {
		fmt.Fprintf(&b, "// origin: %s\n", rep.Name)
	}
	fmt.Fprintf(&b, "// reduced: %d statements (%d oracle evaluations)\n", red.Stmts, red.Tests)
	for _, v := range rep.Violations {
		// One line per violation; details may be multi-line, keep the head.
		d := v.String()
		if i := strings.IndexByte(d, '\n'); i >= 0 {
			d = d[:i]
		}
		fmt.Fprintf(&b, "// violates: %s\n", d)
	}
	b.WriteString("\n")
	b.WriteString(red.Source)
	if !strings.HasSuffix(red.Source, "\n") {
		b.WriteString("\n")
	}
	return b.String()
}

// WriteRepro writes a reproducer under dir (created if needed) and returns
// its path.
func WriteRepro(dir, name string, rep *Report, red ReduceResult) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".mc")
	if err := os.WriteFile(path, []byte(FormatRepro(rep, red)), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
