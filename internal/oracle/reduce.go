package oracle

import (
	"scaf/internal/lang"
)

// This file is the delta-debugging reducer: given a program that fails the
// oracle, shrink it to a small program that still fails. Reduction works
// at the function, global, statement, and block level over the MC AST —
// every candidate is parse→edit→print→re-check, so the reducer never has
// to preserve semantics, only the predicate. Candidates that do not
// compile simply fail the predicate and are rejected.

// ReduceResult is the outcome of one reduction.
type ReduceResult struct {
	// Source is the smallest interesting program found.
	Source string
	// Tests counts predicate evaluations (including the initial check).
	Tests int
	// Stmts counts the statements of Source (see CountStmts).
	Stmts int
}

// maxReduceTests bounds the predicate evaluations of one Reduce call; the
// reducer returns its best-so-far program when the budget runs out.
const maxReduceTests = 3000

// Reduce shrinks src while interesting(src) holds. The input itself must
// be interesting; if it is not (or does not parse), Reduce returns it
// unchanged. interesting must treat non-compiling programs as boring.
func Reduce(src string, interesting func(string) bool) ReduceResult {
	res := ReduceResult{Source: src, Tests: 1}
	if !interesting(src) {
		res.Stmts = CountStmts(src)
		return res
	}
	test := func(candidate string) bool {
		if res.Tests >= maxReduceTests {
			return false
		}
		res.Tests++
		return interesting(candidate)
	}
	// Run every pass to fixpoint: later passes expose work for earlier
	// ones (unwrapping an if exposes removable statements), so loop until
	// a full round accepts nothing.
	for {
		changed := false
		for _, pass := range []func(string, func(string) bool) (string, bool){
			reduceFuncs, reduceGlobals, reduceStmts, reduceUnwrap,
		} {
			out, ok := pass(res.Source, test)
			if ok {
				res.Source = out
				changed = true
			}
		}
		if !changed || res.Tests >= maxReduceTests {
			break
		}
	}
	res.Stmts = CountStmts(res.Source)
	return res
}

// reduceFuncs tries to drop whole functions (never main). A function that
// is still called makes the candidate fail to compile, so it is rejected
// by the predicate.
func reduceFuncs(src string, test func(string) bool) (string, bool) {
	changed := false
	for i := 0; ; {
		f, err := lang.Parse("reduce", src)
		if err != nil || i >= len(f.Funcs) {
			break
		}
		if f.Funcs[i].Name == "main" {
			i++
			continue
		}
		f.Funcs = append(f.Funcs[:i], f.Funcs[i+1:]...)
		if out := Print(f); test(out) {
			src = out
			changed = true
		} else {
			i++
		}
	}
	return src, changed
}

// reduceGlobals tries to drop whole global declarations.
func reduceGlobals(src string, test func(string) bool) (string, bool) {
	changed := false
	for i := 0; ; {
		f, err := lang.Parse("reduce", src)
		if err != nil || i >= len(f.Globals) {
			break
		}
		f.Globals = append(f.Globals[:i], f.Globals[i+1:]...)
		if out := Print(f); test(out) {
			src = out
			changed = true
		} else {
			i++
		}
	}
	return src, changed
}

// blocks returns every block of the file in deterministic walk order.
func blocks(f *lang.File) []*lang.BlockStmt {
	var out []*lang.BlockStmt
	for _, fd := range f.Funcs {
		walkStmt(fd.Body, func(s lang.Stmt) {
			if b, ok := s.(*lang.BlockStmt); ok {
				out = append(out, b)
			}
		})
	}
	return out
}

// reduceStmts is ddmin over each block's statement list: remove chunks of
// halving size until single-statement granularity is exhausted.
func reduceStmts(src string, test func(string) bool) (string, bool) {
	changed := false
	for bi := 0; ; bi++ {
		f, err := lang.Parse("reduce", src)
		if err != nil {
			break
		}
		bs := blocks(f)
		if bi >= len(bs) {
			break
		}
		n := len(bs[bi].Stmts)
		for chunk := n; chunk >= 1; chunk /= 2 {
			for start := 0; ; {
				f, err := lang.Parse("reduce", src)
				if err != nil {
					break
				}
				bs := blocks(f)
				if bi >= len(bs) || start >= len(bs[bi].Stmts) {
					break
				}
				b := bs[bi]
				end := start + chunk
				if end > len(b.Stmts) {
					end = len(b.Stmts)
				}
				b.Stmts = append(b.Stmts[:start:start], b.Stmts[end:]...)
				if out := Print(f); test(out) {
					src = out
					changed = true
				} else {
					start += chunk
				}
			}
		}
	}
	return src, changed
}

// unwrapSites counts the compound statements reachable in f; applyUnwrap
// rewrites site k with one of its replacement variants.
type unwrapSite struct {
	b *lang.BlockStmt
	i int
}

func unwrapSites(f *lang.File) []unwrapSite {
	var out []unwrapSite
	for _, b := range blocks(f) {
		for i, s := range b.Stmts {
			switch s.(type) {
			case *lang.IfStmt, *lang.WhileStmt, *lang.ForStmt, *lang.BlockStmt:
				out = append(out, unwrapSite{b, i})
			}
		}
	}
	return out
}

// variants returns the replacement statement lists an unwrap of s may try,
// strongest (fewest statements) first.
func variants(s lang.Stmt) [][]lang.Stmt {
	asList := func(s lang.Stmt) []lang.Stmt {
		if s == nil {
			return nil
		}
		if b, ok := s.(*lang.BlockStmt); ok {
			return b.Stmts
		}
		return []lang.Stmt{s}
	}
	switch s := s.(type) {
	case *lang.IfStmt:
		v := [][]lang.Stmt{asList(s.Then)}
		if s.Else != nil {
			v = append(v, asList(s.Else))
		}
		return v
	case *lang.WhileStmt:
		return [][]lang.Stmt{asList(s.Body)}
	case *lang.ForStmt:
		// Keep the counter declaration alive so body uses still compile.
		v := asList(s.Body)
		if init, ok := s.Init.(*lang.DeclStmt); ok {
			v = append([]lang.Stmt{init}, v...)
		}
		return [][]lang.Stmt{v}
	case *lang.BlockStmt:
		return [][]lang.Stmt{s.Stmts}
	}
	return nil
}

// reduceUnwrap replaces compound statements by their bodies (if→then,
// if→else, loop→body, block→contents), exposing the contents to the
// statement pass.
func reduceUnwrap(src string, test func(string) bool) (string, bool) {
	changed := false
	for si := 0; ; {
		f, err := lang.Parse("reduce", src)
		if err != nil {
			break
		}
		sites := unwrapSites(f)
		if si >= len(sites) {
			break
		}
		site := sites[si]
		vs := variants(site.b.Stmts[site.i])
		accepted := false
		for _, v := range vs {
			f, err := lang.Parse("reduce", src)
			if err != nil {
				break
			}
			sites := unwrapSites(f)
			if si >= len(sites) {
				break
			}
			site := sites[si]
			b := site.b
			rest := append([]lang.Stmt{}, b.Stmts[site.i+1:]...)
			v = cloneList(v)
			b.Stmts = append(append(b.Stmts[:site.i:site.i], v...), rest...)
			if out := Print(f); test(out) {
				src = out
				changed = true
				accepted = true
				break
			}
		}
		if !accepted {
			si++
		}
	}
	return src, changed
}

// cloneList shallow-copies a statement list (the statements themselves are
// moved, not aliased into two positions).
func cloneList(v []lang.Stmt) []lang.Stmt {
	return append([]lang.Stmt{}, v...)
}

// CountStmts counts the statements of an MC program (blocks themselves
// excluded; a non-parsing program counts as 0). The reducer tests use it
// as the minimality budget.
func CountStmts(src string) int {
	f, err := lang.Parse("count", src)
	if err != nil {
		return 0
	}
	n := 0
	for _, fd := range f.Funcs {
		walkStmt(fd.Body, func(s lang.Stmt) {
			if _, ok := s.(*lang.BlockStmt); !ok {
				n++
			}
		})
	}
	return n
}
