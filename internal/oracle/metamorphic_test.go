package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"scaf/internal/lang"
	"scaf/internal/mcgen"
)

// applyTo parses src, applies tr, and returns the transformed source and
// rename map (fatal if the transform does not apply).
func applyTo(t *testing.T, tr Transform, src string, seed int64) (string, map[string]string) {
	t.Helper()
	f, err := lang.Parse("meta", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rename, applied := tr.Apply(f, rand.New(rand.NewSource(seed)))
	if !applied {
		t.Fatalf("%s did not apply to:\n%s", tr.Name, src)
	}
	return Print(f), rename
}

const metaProg = `
int g1[8];
int helper(int* p, int x) {
    int acc = x;
    p[(x + 1) & 7] = acc;
    return acc;
}
void main() {
    int a = 3;
    int b = 4;
    for (int i = 0; i < 8; i++) {
        g1[i & 7] = a;
        a = a + g1[(i + 1) & 7];
    }
    a = a + helper(g1, b);
    print(a);
    print(b);
}
`

func TestRenameTransform(t *testing.T) {
	out, rename := applyTo(t, mustTransform(t, "rename"), metaProg, 1)
	if len(rename) == 0 {
		t.Fatal("rename returned an empty map")
	}
	// main and builtins survive; every declared name is gone.
	if !strings.Contains(out, "void main()") || !strings.Contains(out, "print(") {
		t.Fatalf("main/print must not be renamed:\n%s", out)
	}
	for _, name := range []string{"g1", "helper", "acc"} {
		if _, ok := rename[name]; !ok {
			t.Errorf("declared name %q missing from rename map", name)
		}
	}
	for old, new_ := range rename {
		if strings.Contains(out, old+"[") || strings.Contains(out, old+" =") {
			t.Errorf("old name %q still used:\n%s", old, out)
		}
		if !strings.Contains(out, new_) {
			t.Errorf("new name %q absent:\n%s", new_, out)
		}
	}
	// Injective: no two old names share a new name.
	seen := map[string]string{}
	for old, new_ := range rename {
		if prev, dup := seen[new_]; dup {
			t.Errorf("rename collision: %q and %q both -> %q", prev, old, new_)
		}
		seen[new_] = old
	}
	if !equalOutput(run(t, "orig", metaProg), run(t, "renamed", out)) {
		t.Fatal("rename changed observable behavior")
	}
}

func TestDeadCodeTransform(t *testing.T) {
	out, _ := applyTo(t, mustTransform(t, "deadcode"), metaProg, 2)
	if !strings.Contains(out, "zzd") {
		t.Fatalf("no dead statement inserted:\n%s", out)
	}
	if !equalOutput(run(t, "orig", metaProg), run(t, "dead", out)) {
		t.Fatal("dead-code insertion changed observable behavior")
	}
}

func TestReorderTransform(t *testing.T) {
	// `int a` and `int b` are independent pure-scalar statements.
	out, _ := applyTo(t, mustTransform(t, "reorder"), metaProg, 3)
	if out == Print(mustParse(t, metaProg)) {
		t.Fatalf("reorder applied but changed nothing:\n%s", out)
	}
	if !equalOutput(run(t, "orig", metaProg), run(t, "reordered", out)) {
		t.Fatal("reorder changed observable behavior")
	}
}

func TestReorderRespectsDependences(t *testing.T) {
	// Every adjacent scalar pair is dependent — nothing may swap.
	src := `
void main() {
    int a = 1;
    int b = a + 1;
    int c = b + a;
    print(c);
}
`
	f := mustParse(t, src)
	if _, applied := mustTransform(t, "reorder").Apply(f, rand.New(rand.NewSource(1))); applied {
		t.Fatalf("reorder found a swap in a fully dependent chain:\n%s", Print(f))
	}
}

func TestPeelTransform(t *testing.T) {
	out, _ := applyTo(t, mustTransform(t, "peel"), metaProg, 4)
	// The loop now starts at 1 and a peeled copy precedes it.
	if !strings.Contains(out, "= 1; ") || !strings.Contains(out, "zzp0") {
		t.Fatalf("peel did not rewrite the loop:\n%s", out)
	}
	if !equalOutput(run(t, "orig", metaProg), run(t, "peeled", out)) {
		t.Fatal("peeling changed observable behavior")
	}
}

func TestPeelSkipsNestedLoops(t *testing.T) {
	// The only countable loop is nested: peel must refuse (its body's
	// memory operations would move into the outer loop).
	src := `
int g[8];
void main() {
    int n = 0;
    while (n < 2) {
        for (int i = 0; i < 8; i++) {
            g[i & 7] = i;
        }
        n = n + 1;
    }
    print(g[3]);
}
`
	f := mustParse(t, src)
	if _, applied := mustTransform(t, "peel").Apply(f, rand.New(rand.NewSource(1))); applied {
		t.Fatalf("peel applied to a nested loop:\n%s", Print(f))
	}
}

// TestTransformsValidOverSeeds: every transform preserves observable
// behavior across a seed range — the validity half of the metamorphic
// argument, independent of any analysis comparison.
func TestTransformsValidOverSeeds(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 10
	}
	for _, tr := range Transforms() {
		tr := tr
		t.Run(tr.Name, func(t *testing.T) {
			applied := 0
			for seed := int64(1); seed <= seeds; seed++ {
				src := mcgen.New(seed).Program()
				f, err := lang.Parse("valid", src)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				_, ok := tr.Apply(f, rand.New(rand.NewSource(seed)))
				if !ok {
					continue
				}
				applied++
				out := Print(f)
				if !equalOutput(run(t, "orig", src), run(t, tr.Name, out)) {
					t.Fatalf("seed %d: %s changed observable behavior\n%s", seed, tr.Name, out)
				}
			}
			if applied == 0 {
				t.Fatalf("%s never applied over %d seeds", tr.Name, seeds)
			}
		})
	}
}

func TestMapNames(t *testing.T) {
	m := map[string]string{"zz1": "alpha", "zz12": "beta"}
	in := `{"loop":"main/zz1","i1":"zz12#3","x":"zz1zz12"}`
	want := `{"loop":"main/alpha","i1":"beta#3","x":"zz1zz12"}`
	if got := mapNames(in, m); got != want {
		t.Fatalf("mapNames = %q, want %q", got, want)
	}
}

func mustTransform(t *testing.T, name string) Transform {
	t.Helper()
	tr, ok := TransformByName(name)
	if !ok {
		t.Fatalf("no transform %q", name)
	}
	return tr
}

func mustParse(t *testing.T, src string) *lang.File {
	t.Helper()
	f, err := lang.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}
