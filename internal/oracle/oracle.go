// Package oracle is the differential-testing subsystem: one reusable
// soundness predicate over randomly generated MC programs, checked across
// every execution path of the analysis (serial, parallel, shared-cache,
// and the HTTP serving daemon), a metamorphic layer of semantics-preserving
// source transforms under which non-speculative answers must be preserved,
// and a delta-debugging reducer that shrinks any failing program to a
// minimal reproducer.
//
// The predicate generalizes the repository's fuzzing logic into a library:
// generate (or accept) an MC program, compile and profile it, collect the
// memory-dependence profiler's ground truth from the very execution the
// speculation was trained on, then check every analysis scheme's answers.
// A dependence that manifested during training and is nonetheless disproved
// by anything but value prediction is a soundness bug; any divergence
// between execution paths of the same scheme is answer drift; any change in
// non-speculative answers under a semantics-preserving transform is a
// stability bug. All three are reported uniformly as Violations, so the
// fuzz loop, the test suite, and the scaf-oracle CLI share one verdict.
package oracle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"

	"scaf"
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/interp"
	"scaf/internal/mcgen"
	"scaf/internal/memspec"
	"scaf/internal/pdg"
	"scaf/internal/profile"
	"scaf/internal/recovery"
	"scaf/internal/runtime"
	"scaf/internal/server"
	"scaf/internal/spec"
)

// Config selects which checks a trial runs. The zero value checks nothing;
// use FullConfig or FastConfig as a starting point.
type Config struct {
	// HotLoops overrides the paper's hot-loop thresholds so the small
	// random loops all get analyzed.
	HotLoops profile.HotLoopParams
	// Schemes are the analysis schemes whose answers are soundness-checked.
	Schemes []scaf.Scheme
	// Monotonicity cross-checks per-query resolutions across schemes
	// (CAF ⊆ Confluence ⊆ SCAF). Requires all three schemes.
	Monotonicity bool
	// Parallel re-resolves every scheme through pdg.ParallelClient and
	// flags any drift from the serial answers.
	Parallel bool
	// SharedCache re-resolves through a parallel client whose workers
	// share one core.SharedCache.
	SharedCache bool
	// Server re-resolves through the internal/server HTTP path (an
	// in-process handler; no network) and compares at the level of
	// serialized wire bytes. Incompatible with ExtraModules — the daemon
	// builds its own orchestrators.
	Server bool
	// Fleet re-resolves through a sharded fleet — two scaf-serve backends
	// wired as cache peers behind a consistent-hash scaf-router on
	// loopback — and byte-compares every response body (create, spliced
	// analyze envelopes, queries, serial and parallel) against a single
	// cold instance. Incompatible with ExtraModules, like Server.
	Fleet bool
	// Persist runs the warm-restart pass: a persistent fleet-of-one
	// instance serves the session, drains (snapshotting its shard),
	// restarts from the same directory, and the warm instance's bytes
	// must equal a cold single instance's — including across a restart
	// that straddles an /observe quarantine, where the revoked entries
	// must be physical misses after reload. Incompatible with
	// ExtraModules, like Server and Fleet.
	Persist bool
	// Elastic runs the live-membership pass: the fleet topology plus one
	// spare backend, joined through POST /fleet/join while concurrent
	// clients replay serial golds (bounded 503 retries are the only
	// permitted detour), then shrunk through POST /fleet/leave — every
	// answer byte-compared against the static fleet's, with the joiner
	// required to actually serve from its streamed segments. Incompatible
	// with ExtraModules, like Server and Fleet.
	Elastic bool
	// ValidatePlan additionally builds the speculation plan on session
	// load (the server's plan=validate path) and re-runs the program with
	// the plan's runtime checks enforced; a misspeculating plan on the
	// training input is a soundness bug.
	ValidatePlan bool
	// Transforms is the metamorphic layer: each transform is applied to
	// the source, validated by re-running the interpreter and comparing
	// observable behavior, and only then do preserved-answer checks count.
	Transforms []Transform
	// Execution runs the execution-equivalence pass: every scheme's plans
	// are handed to the speculative-parallel runtime and the result (final
	// memory image + observable output) must be byte-equal to serial
	// interpretation. A second, chaos-seeded run forces misspeculations and
	// must stay byte-equal on every recovery round and converge to a
	// misspeculation-free execution.
	Execution bool
	// Recovery runs the misspeculation-recovery pass: a fault-injection
	// module is added to every scheme's ensemble and made to answer a
	// fraction of queries with confidently wrong speculation; the pass then
	// quarantines the observed lies exactly as a production observe loop
	// would, and requires the degraded answers to be byte-identical to the
	// fault-free serial reference and sound against profiled ground truth.
	Recovery bool
	// ExtraModules, when non-nil, mints additional modules appended to
	// every orchestrator built for the library paths (serial, parallel,
	// shared-cache). It is called once per orchestrator so module state is
	// never shared across workers. Used by the reducer tests to inject
	// known soundness bugs behind a test-only hook.
	ExtraModules func() []core.Module
	// Workers sizes the parallel clients (default 4).
	Workers int
}

// FullConfig checks everything: all schemes, all execution paths, all
// metamorphic transforms.
func FullConfig() Config {
	return Config{
		HotLoops:     profile.HotLoopParams{MinWeightFrac: 0.001, MinAvgIters: 1.5},
		Schemes:      []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF},
		Monotonicity: true,
		Parallel:     true,
		SharedCache:  true,
		Server:       true,
		Fleet:        true,
		Persist:      true,
		Elastic:      true,
		Recovery:     true,
		Execution:    true,
		Transforms:   Transforms(),
		Workers:      4,
	}
}

// FastConfig is the fuzzing-loop predicate: serial soundness over all
// schemes plus monotonicity, nothing else. One iteration is cheap enough
// for -fuzz budgets measured in seconds.
func FastConfig() Config {
	return Config{
		HotLoops:     profile.HotLoopParams{MinWeightFrac: 0.001, MinAvgIters: 1.5},
		Schemes:      []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF},
		Monotonicity: true,
	}
}

// Violation kinds.
const (
	KindUnsound          = "unsound"           // disproved a manifested dependence
	KindMonotonicity     = "monotonicity"      // a richer scheme lost a resolution
	KindDriftParallel    = "drift-parallel"    // parallel answers != serial
	KindDriftShared      = "drift-shared"      // shared-cache answers != serial
	KindDriftServer      = "drift-server"      // HTTP answers != serial
	KindDriftFleet       = "drift-fleet"       // fleet answers != single instance
	KindDriftPersist     = "drift-persist"     // warm-restart answers != cold instance
	KindDriftElastic     = "drift-elastic"     // answers drift across a live join/leave
	KindPlanInvalid      = "plan-invalid"      // speculation plan misspeculated on its own training input
	KindMetamorphic      = "metamorphic"       // transform changed preserved answers
	KindTransformInvalid = "transform-invalid" // transform changed observable behavior (harness bug)
	KindRecoveryTaint    = "recovery-taint"    // quarantined speculation still reaches answers
	KindRecoveryDrift    = "recovery-drift"    // recovered answers != fault-free reference
	KindRecoveryUnsound  = "recovery-unsound"  // recovered answers disprove a manifested dep
	KindExecDiverge      = "exec-diverge"      // speculative-parallel result != serial
	KindExecMisspec      = "exec-misspec"      // honest plan misspeculated on its training input
	KindExecStuck        = "exec-stuck"        // chaos execution never converged to misspec-free
)

// Violation is one oracle finding.
type Violation struct {
	Kind      string
	Scheme    string
	Transform string // metamorphic findings only
	Loop      string
	Detail    string
}

func (v Violation) String() string {
	var b strings.Builder
	b.WriteString(v.Kind)
	if v.Scheme != "" {
		fmt.Fprintf(&b, " [%s]", v.Scheme)
	}
	if v.Transform != "" {
		fmt.Fprintf(&b, " <%s>", v.Transform)
	}
	if v.Loop != "" {
		fmt.Fprintf(&b, " %s", v.Loop)
	}
	b.WriteString(": ")
	b.WriteString(v.Detail)
	return b.String()
}

const maxViolationsPerTrial = 50

// Report is the outcome of one trial.
type Report struct {
	Seed   int64 // CheckSeed only; 0 for CheckProgram
	Name   string
	Source string
	// HotLoops and Queries size the trial (for nonvacuity assertions).
	HotLoops int
	Queries  int
	// TransformsApplied counts transforms that applied to this program;
	// ComparedLoops counts loops whose answers were compared across a
	// transform (a transform can apply yet leave a marginal loop out of
	// the transformed hot set).
	TransformsApplied int
	ComparedLoops     int
	// AppliedByTransform counts applications per transform name (nil
	// until the first transform applies).
	AppliedByTransform map[string]int
	// ExecSpecIters counts iterations the execution pass actually ran
	// speculatively; ExecMisspecs counts chaos-forced misspeculations it
	// recovered from. Both are nonvacuity signals when the pass is on.
	ExecSpecIters int64
	ExecMisspecs  int
	// ChaosLies counts distinct injected misspeculations the recovery pass
	// observed and quarantined; RecoveryRounds counts observe→re-analyze
	// iterations it took to reach a chaos-free fixpoint. Both are zero when
	// the pass is off — and a nonvacuity signal when it is on.
	ChaosLies      int
	RecoveryRounds int
	// PersistWarmHits counts answers the warm-restart pass served from a
	// reloaded snapshot; PersistBlocked counts revoked entries the reload
	// physically refused. Nonvacuity signals for the persist pass.
	PersistWarmHits int64
	PersistBlocked  int64
	// ElasticWarmHits counts loop-lookaside hits the joined backend served
	// after a live membership change. Nonvacuity signal for the elastic
	// pass: byte identity must come from the streamed state, not silent
	// recomputation.
	ElasticWarmHits int64
	Violations      []Violation
}

// Failed reports whether any check failed.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// HasViolation reports whether a violation of the given kind was found.
func (r *Report) HasViolation(kind string) bool {
	for _, v := range r.Violations {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

func (r *Report) violate(v Violation) {
	if len(r.Violations) < maxViolationsPerTrial {
		r.Violations = append(r.Violations, v)
	}
}

// Summary renders the failure in one block: every violation plus the
// program that triggered it.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle: %d violation(s) on %s (seed %d, %d hot loops, %d queries)\n",
		len(r.Violations), r.Name, r.Seed, r.HotLoops, r.Queries)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	b.WriteString(r.Source)
	return b.String()
}

// CheckSeed generates the random program of one mcgen seed and checks it.
func CheckSeed(cfg Config, seed int64) (*Report, error) {
	src := mcgen.New(seed).Program()
	rep, err := CheckProgram(cfg, fmt.Sprintf("seed%d", seed), src)
	if rep != nil {
		rep.Seed = seed
	}
	return rep, err
}

// CheckProgram runs every configured check against one MC program. The
// returned error reports a program that cannot be compiled, profiled, or
// executed — a caller bug, not an analysis finding; analysis findings are
// Violations in the report.
func CheckProgram(cfg Config, name, src string) (*Report, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	rep := &Report{Name: name, Source: src}
	base, err := analyzeSource(cfg, name, src)
	if err != nil {
		return nil, err
	}
	rep.HotLoops = len(base.hot)

	for _, scheme := range cfg.Schemes {
		checkSoundness(rep, base, scheme)
	}
	if cfg.Monotonicity {
		checkMonotonicity(rep, base)
	}
	for _, scheme := range cfg.Schemes {
		if cfg.Parallel {
			checkParallelDrift(cfg, rep, base, scheme, false)
		}
		if cfg.SharedCache {
			checkParallelDrift(cfg, rep, base, scheme, true)
		}
	}
	if cfg.Server && cfg.ExtraModules == nil {
		checkServerDrift(cfg, rep, base)
	}
	if cfg.Fleet && cfg.ExtraModules == nil {
		checkFleetDrift(cfg, rep, base)
	}
	if cfg.Persist && cfg.ExtraModules == nil {
		checkPersist(cfg, rep, base)
	}
	if cfg.Elastic && cfg.ExtraModules == nil {
		checkElasticDrift(cfg, rep, base)
	}
	if cfg.Recovery {
		for _, scheme := range cfg.Schemes {
			checkRecovery(cfg, rep, base, scheme)
		}
	}
	if cfg.Execution {
		for _, scheme := range cfg.Schemes {
			checkExecution(cfg, rep, base, scheme)
		}
	}
	for _, tr := range cfg.Transforms {
		checkTransform(cfg, rep, base, tr)
	}
	return rep, nil
}

// analysis is one compiled, profiled, serially-analyzed program.
type analysis struct {
	cfg    Config
	name   string
	src    string
	sys    *scaf.System
	client *pdg.Client
	ms     *memspec.MemSpec
	hot    []*cfg.Loop
	// serial holds each scheme's serial answers — the canonical result
	// every other path is compared against.
	serial map[scaf.Scheme][]*pdg.LoopResult
	wire   map[scaf.Scheme][]server.WireLoopResult
	output []string // observable behavior of the training run
	memDig uint64   // final-memory digest of the training run
}

// orchOptions builds the per-orchestrator option list, minting fresh extra
// modules on every call so no state is shared across orchestrators.
func orchOptions(cfg Config) []scaf.OrchOption {
	var opts []scaf.OrchOption
	if cfg.ExtraModules != nil {
		opts = append(opts, scaf.WithExtraModules(cfg.ExtraModules()...))
	}
	return opts
}

func analyzeSource(cfg Config, name, src string) (*analysis, error) {
	hot := cfg.HotLoops
	sys, err := scaf.Load(name, src, scaf.Options{HotLoops: &hot})
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: %w", name, err)
	}
	run, err := interp.Run(sys.Mod, interp.Options{})
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: observable run: %w", name, err)
	}
	a := &analysis{
		cfg:    cfg,
		name:   name,
		src:    src,
		sys:    sys,
		client: sys.Client(),
		ms:     sys.MemSpec(),
		hot:    sys.HotLoops(),
		serial: map[scaf.Scheme][]*pdg.LoopResult{},
		wire:   map[scaf.Scheme][]server.WireLoopResult{},
		output: run.Output,
		memDig: run.Mem.Digest(),
	}
	for _, scheme := range cfg.Schemes {
		o := sys.Orchestrator(scheme, orchOptions(cfg)...)
		results := make([]*pdg.LoopResult, 0, len(a.hot))
		wires := make([]server.WireLoopResult, 0, len(a.hot))
		for _, l := range a.hot {
			res := a.client.ResolveLoop(o, l)
			results = append(results, res)
			wires = append(wires, server.EncodeLoopResult(res))
		}
		a.serial[scheme] = results
		a.wire[scheme] = wires
	}
	return a, nil
}

// usesValuePred reports whether any option of the response is predicated
// on a value-prediction assertion. Value prediction is the one speculation
// that may legitimately remove dependences that manifested (the predicted
// load is replaced by its constant, so the flow edge disappears).
func usesValuePred(r core.ModRefResponse) bool {
	for _, o := range r.Options {
		for _, a := range o.Asserts {
			if a.Module == spec.NameValuePred {
				return true
			}
		}
	}
	return false
}

// checkSoundness cross-checks every dependence the scheme disproves
// against the ground truth recorded by the memory-dependence profiler
// during the very execution the speculation was trained on.
func checkSoundness(rep *Report, a *analysis, scheme scaf.Scheme) {
	rep.Queries += countQueries(a.serial[scheme])
	soundnessViolations(rep, a, scheme, a.serial[scheme], KindUnsound)
}

func countQueries(results []*pdg.LoopResult) int {
	n := 0
	for _, res := range results {
		n += len(res.Queries)
	}
	return n
}

// soundnessViolations applies the manifested-dependence predicate to one
// result set, reporting failures under the given violation kind.
func soundnessViolations(rep *Report, a *analysis, scheme scaf.Scheme, results []*pdg.LoopResult, kind string) {
	for i, res := range results {
		l := a.hot[i]
		for _, q := range res.Queries {
			if !q.NoDep {
				continue
			}
			if a.ms.NoDep(l, q.I1, q.I2, q.Rel) {
				continue // never manifested: consistent
			}
			if scheme != scaf.SchemeCAF && usesValuePred(q.Resp) {
				continue // value prediction may remove real deps
			}
			rep.violate(Violation{
				Kind: kind, Scheme: scheme.String(), Loop: l.Name(),
				Detail: fmt.Sprintf("disproved manifested dep %s -> %s (%s) via %v",
					q.I1, q.I2, q.Rel, q.Resp.Contribs),
			})
		}
	}
}

// checkMonotonicity: per-query resolutions must be monotone across
// CAF ⊆ Confluence ⊆ SCAF — a richer scheme never loses a resolution.
func checkMonotonicity(rep *Report, a *analysis) {
	caf, okC := a.serial[scaf.SchemeCAF]
	conf, okF := a.serial[scaf.SchemeConfluence]
	col, okS := a.serial[scaf.SchemeSCAF]
	if !okC || !okF || !okS {
		return
	}
	for i := range a.hot {
		rCAF := caf[i].ByKey()
		rConf := conf[i].ByKey()
		for _, q := range col[i].Queries {
			k := pdg.Key{I1: q.I1, I2: q.I2, Rel: q.Rel}
			if rCAF[k] != nil && rCAF[k].NoDep && !(rConf[k] != nil && rConf[k].NoDep) {
				rep.violate(Violation{Kind: KindMonotonicity, Loop: a.hot[i].Name(),
					Detail: fmt.Sprintf("confluence lost a CAF resolution: %s -> %s (%s)", q.I1, q.I2, q.Rel)})
			}
			if rConf[k] != nil && rConf[k].NoDep && !q.NoDep {
				rep.violate(Violation{Kind: KindMonotonicity, Loop: a.hot[i].Name(),
					Detail: fmt.Sprintf("SCAF lost a confluence resolution: %s -> %s (%s)", q.I1, q.I2, q.Rel)})
			}
		}
	}
}

// wireJSON renders wire results to canonical bytes for drift comparison.
func wireJSON(w []server.WireLoopResult) []byte {
	b, err := json.Marshal(w)
	if err != nil { // struct-only payload: cannot happen
		panic(err)
	}
	return b
}

// checkParallelDrift re-resolves through pdg.ParallelClient — optionally
// with a worker-shared memo cache — and flags any drift from serial.
func checkParallelDrift(cfg Config, rep *Report, a *analysis, scheme scaf.Scheme, shared bool) {
	kind := KindDriftParallel
	opts := orchOptions(cfg)
	if shared {
		kind = KindDriftShared
		opts = append(opts, scaf.WithSharedCache(core.NewSharedCache()))
	}
	factory := func() *core.Orchestrator { return a.sys.Orchestrator(scheme, opts...) }
	pc := pdg.NewParallelClient(a.client, cfg.Workers, factory)
	results, _ := pc.AnalyzeLoops(a.hot)
	for i, res := range results {
		got := wireJSON([]server.WireLoopResult{server.EncodeLoopResult(res)})
		want := wireJSON(a.wire[scheme][i : i+1])
		if !bytes.Equal(got, want) {
			rep.violate(Violation{Kind: kind, Scheme: scheme.String(), Loop: a.hot[i].Name(),
				Detail: fmt.Sprintf("answers diverge from serial:\n  serial:   %s\n  parallel: %s", want, got)})
		}
	}
}

// chaosSeed derives a deterministic fault-injection seed from the trial
// name (FNV-1a) so distinct programs see distinct, reproducible lie
// patterns.
func chaosSeed(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}

// chaosAssertKeys harvests the wire identities of every chaos assertion
// that reached an answer — exactly the set a production client would
// report back through /observe after watching those speculations
// misspeculate at runtime.
func chaosAssertKeys(results []*pdg.LoopResult) []string {
	seen := map[string]bool{}
	for _, res := range results {
		for _, q := range res.Queries {
			for _, o := range q.Resp.Options {
				for _, as := range o.Asserts {
					if as.Module == recovery.NameChaos {
						seen[as.String()] = true
					}
				}
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// analyzeWith re-analyzes every hot loop serially under one orchestrator
// built with the given options.
func analyzeWith(a *analysis, scheme scaf.Scheme, opts []scaf.OrchOption) []*pdg.LoopResult {
	o := a.sys.Orchestrator(scheme, opts...)
	results := make([]*pdg.LoopResult, 0, len(a.hot))
	for _, l := range a.hot {
		results = append(results, a.client.ResolveLoop(o, l))
	}
	return results
}

// checkRecovery drives the misspeculation-recovery loop under fault
// injection for one scheme. A chaos module confidently lies on a fraction
// of queries; every lie that reaches an answer is quarantined — the same
// action the serving daemon takes on POST /observe — and the loops are
// re-analyzed until the answers are chaos-free (later rounds can surface
// lies that earlier, cheaper lies had shadowed). The recovered answers
// must be byte-identical to the fault-free serial reference — recovery is
// exclusion, not approximation — and must stay sound against profiled
// ground truth. A second run withdraws the whole module up front (the
// panic-isolation path) and must match the reference immediately.
func checkRecovery(cfg Config, rep *Report, a *analysis, scheme scaf.Scheme) {
	const maxRounds = 12
	chaos := &recovery.Chaos{Seed: chaosSeed(a.name), WrongEvery: 2}
	opts := func(q *recovery.Quarantine) []scaf.OrchOption {
		base := orchOptions(cfg)
		out := make([]scaf.OrchOption, 0, len(base)+2)
		out = append(out, base...)
		return append(out, scaf.WithExtraModules(chaos), scaf.WithModuleWrapper(recovery.Wrapper(q)))
	}

	q := recovery.New()
	results := analyzeWith(a, scheme, opts(q))
	lies := chaosAssertKeys(results)
	rounds := 0
	for len(lies) > 0 && rounds < maxRounds {
		for _, k := range lies {
			if q.AddAssert(k, "oracle: observed misspeculation") {
				rep.ChaosLies++
			}
		}
		results = analyzeWith(a, scheme, opts(q))
		lies = chaosAssertKeys(results)
		rounds++
	}
	rep.RecoveryRounds += rounds
	if len(lies) > 0 {
		rep.violate(Violation{Kind: KindRecoveryTaint, Scheme: scheme.String(),
			Detail: fmt.Sprintf("%d chaos assertions still reach answers after %d quarantine rounds: %v",
				len(lies), rounds, lies)})
		return
	}
	compareRecovered(rep, a, scheme, results,
		fmt.Sprintf("after %d assertion-quarantine rounds", rounds))
	soundnessViolations(rep, a, scheme, results, KindRecoveryUnsound)

	qm := recovery.New()
	qm.AddModule(recovery.NameChaos, "oracle: module withdrawn")
	withdrawn := analyzeWith(a, scheme, opts(qm))
	compareRecovered(rep, a, scheme, withdrawn, "with the chaos module withdrawn")
	soundnessViolations(rep, a, scheme, withdrawn, KindRecoveryUnsound)
}

// execDiverged compares a speculative-parallel execution against the
// serial training run, byte-for-byte: observable output line by line, and
// the final memory image by digest.
func execDiverged(a *analysis, r *runtime.Report) string {
	if strings.Join(r.Output, "\n") != strings.Join(a.output, "\n") {
		return fmt.Sprintf("output diverged:\n  serial:      %v\n  speculative: %v", a.output, r.Output)
	}
	if r.MemDigest != a.memDig {
		return fmt.Sprintf("final memory diverged (digest %#x, serial %#x)", r.MemDigest, a.memDig)
	}
	return ""
}

// checkExecution runs the execution-equivalence pass for one scheme.
//
// Honest pass: the scheme's plans drive the speculative-parallel runtime
// and the result must be byte-equal to serial — and must not misspeculate,
// since the plan was trained on this very input (the runtime analogue of
// KindPlanInvalid). Chaos pass: a seeded fault-injection module lies its
// way into the plans, forcing real misspeculations; every recovery round
// must still end byte-equal (abort → quarantine → serial re-execution is
// exclusion, not approximation), and rerunning with the accumulated
// quarantine must reach a misspeculation-free execution within a bounded
// number of rounds.
func checkExecution(cfg Config, rep *Report, a *analysis, scheme scaf.Scheme) {
	const maxExecRounds = 10
	execCfg := func(q *recovery.Quarantine, sc *core.SharedCache) runtime.Config {
		return runtime.Config{Workers: cfg.Workers, MinIters: 2, Quarantine: q, Cache: sc}
	}

	hq := recovery.New()
	honest, err := a.sys.ExecutePlan(scheme, execCfg(hq, nil), orchOptions(cfg)...)
	if err != nil {
		rep.violate(Violation{Kind: KindExecDiverge, Scheme: scheme.String(),
			Detail: fmt.Sprintf("speculative execution failed: %v", err)})
		return
	}
	if d := execDiverged(a, honest); d != "" {
		rep.violate(Violation{Kind: KindExecDiverge, Scheme: scheme.String(), Detail: d})
	}
	if honest.Misspecs > 0 && cfg.ExtraModules == nil {
		// Value prediction is the one speculation that may legitimately
		// misspeculate on the training input (the runtime reads real memory
		// where the plan assumed a predicted constant, and validation
		// rightly catches it). Any other attribution — or an abort with
		// nothing to attribute — means the plan disproved a manifested
		// dependence it had no speculative license for.
		keys := hq.AssertKeys()
		if len(keys) == 0 {
			rep.violate(Violation{Kind: KindExecMisspec, Scheme: scheme.String(),
				Detail: fmt.Sprintf("plan misspeculated %d time(s) on its training input with nothing to attribute", honest.Misspecs)})
		}
		for _, k := range keys {
			if !strings.HasPrefix(k, spec.NameValuePred+"/") {
				rep.violate(Violation{Kind: KindExecMisspec, Scheme: scheme.String(),
					Detail: fmt.Sprintf("training-input misspeculation attributed to non-value-pred assertion %s", k)})
			}
		}
	}
	rep.ExecSpecIters += honest.SpecIters

	chaos := &recovery.Chaos{Seed: chaosSeed(a.name + "/" + scheme.String()), WrongEvery: 2}
	q := recovery.New()
	sc := core.NewSharedCache()
	for round := 1; ; round++ {
		r, err := a.sys.ExecutePlan(scheme, execCfg(q, sc),
			append(orchOptions(cfg), scaf.WithExtraModules(chaos))...)
		if err != nil {
			rep.violate(Violation{Kind: KindExecDiverge, Scheme: scheme.String(),
				Detail: fmt.Sprintf("chaos round %d: execution failed: %v", round, err)})
			return
		}
		if d := execDiverged(a, r); d != "" {
			rep.violate(Violation{Kind: KindExecDiverge, Scheme: scheme.String(),
				Detail: fmt.Sprintf("chaos round %d: %s", round, d)})
			return
		}
		rep.ExecMisspecs += int(r.Misspecs)
		if r.Misspecs == 0 {
			return
		}
		if round >= maxExecRounds {
			rep.violate(Violation{Kind: KindExecStuck, Scheme: scheme.String(),
				Detail: fmt.Sprintf("still misspeculating after %d chaos rounds (%d quarantined asserts)",
					round, len(q.AssertKeys()))})
			return
		}
	}
}

// compareRecovered byte-compares recovered answers against the fault-free
// serial reference, per loop, through the wire encoding.
func compareRecovered(rep *Report, a *analysis, scheme scaf.Scheme, results []*pdg.LoopResult, how string) {
	for i, res := range results {
		got := wireJSON([]server.WireLoopResult{server.EncodeLoopResult(res)})
		want := wireJSON(a.wire[scheme][i : i+1])
		if !bytes.Equal(got, want) {
			rep.violate(Violation{Kind: KindRecoveryDrift, Scheme: scheme.String(), Loop: a.hot[i].Name(),
				Detail: fmt.Sprintf("answers %s diverge from fault-free reference:\n  reference: %s\n  recovered: %s",
					how, want, got)})
		}
	}
}

// checkServerDrift loads the program as a session of an in-process
// analysis daemon and compares the HTTP answers — byte-level, through the
// same wire encoding as the serial results — for every scheme.
func checkServerDrift(cfg Config, rep *Report, a *analysis) {
	srv := server.New(server.Config{Workers: 2})
	h := srv.Handler()

	plan := "off"
	if cfg.ValidatePlan {
		plan = "validate"
	}
	createBody, _ := json.Marshal(map[string]any{
		"name": a.name, "source": a.src, "plan": plan,
		"hot_loops": map[string]float64{
			"min_weight_frac": cfg.HotLoops.MinWeightFrac,
			"min_avg_iters":   cfg.HotLoops.MinAvgIters,
		},
	})
	status, body := do(h, "POST", "/sessions", createBody)
	if status == http.StatusUnprocessableEntity && cfg.ValidatePlan {
		rep.violate(Violation{Kind: KindPlanInvalid,
			Detail: fmt.Sprintf("speculation plan failed its own training-input validation: %s", body)})
		return
	}
	if status != http.StatusCreated {
		rep.violate(Violation{Kind: KindDriftServer,
			Detail: fmt.Sprintf("session load failed: status %d: %s", status, body)})
		return
	}
	var info server.SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		rep.violate(Violation{Kind: KindDriftServer, Detail: fmt.Sprintf("bad session info: %v", err)})
		return
	}
	if len(info.HotLoops) != len(a.hot) {
		rep.violate(Violation{Kind: KindDriftServer,
			Detail: fmt.Sprintf("server sees %d hot loops, library sees %d", len(info.HotLoops), len(a.hot))})
		return
	}
	for _, scheme := range cfg.Schemes {
		reqBody, _ := json.Marshal(map[string]any{"scheme": scheme.String()})
		status, body := do(h, "POST", "/sessions/"+info.ID+"/analyze", reqBody)
		if status != http.StatusOK {
			rep.violate(Violation{Kind: KindDriftServer, Scheme: scheme.String(),
				Detail: fmt.Sprintf("analyze failed: status %d: %s", status, body)})
			continue
		}
		var resp server.AnalyzeResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			rep.violate(Violation{Kind: KindDriftServer, Scheme: scheme.String(),
				Detail: fmt.Sprintf("bad analyze response: %v", err)})
			continue
		}
		got := wireJSON(resp.Results)
		want := wireJSON(a.wire[scheme])
		if !bytes.Equal(got, want) {
			rep.violate(Violation{Kind: KindDriftServer, Scheme: scheme.String(),
				Detail: fmt.Sprintf("HTTP answers diverge from library:\n  library: %s\n  http:    %s", want, got)})
		}
	}
}

// do drives the in-process handler with one request, no network.
func do(h http.Handler, method, path string, body []byte) (int, []byte) {
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}
