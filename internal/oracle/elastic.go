package oracle

// The elastic pass proves that live membership change is invisible at the
// byte level. It boots the same two-backend fleet as checkFleetDrift plus
// one spare backend, collects serial golds through the router, then joins
// the spare WHILE concurrent clients hammer those golds — every request
// must end in the gold bytes, with bounded 503 backend_down retries (the
// drained-cutover window) as the only permitted detour. After the join the
// golds must replay byte-identically through the grown fleet, and the
// joiner must actually serve from the state the cutover streamed to it
// (nonvacuity: its loop lookaside hits, checked whenever the new ring
// moves at least one analyze key onto it). Then one original backend
// leaves and the shrunk fleet must still serve the same bytes. Throughout,
// the router must report zero broadcast inconsistencies and zero rollbacks
// — a planned move never manufactures split brain.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"scaf/internal/fleet"
	"scaf/internal/server"
)

// elasticRetryCap bounds how many 503 retries one hammered request may
// burn before the window counts as unbounded (a violation).
const elasticRetryCap = 400

func checkElasticDrift(cfg Config, rep *Report, a *analysis) {
	refSrv := server.New(server.Config{Workers: 2})
	refH := refSrv.Handler()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		refSrv.Shutdown(ctx)
	}()

	ef, err := bootElasticFleet()
	if err != nil {
		rep.violate(Violation{Kind: KindDriftElastic, Detail: fmt.Sprintf("elastic fleet boot: %v", err)})
		return
	}
	defer ef.shutdown()

	createBody, _ := json.Marshal(map[string]any{
		"name": a.name, "source": a.src, "plan": "off",
		"hot_loops": map[string]float64{
			"min_weight_frac": cfg.HotLoops.MinWeightFrac,
			"min_avg_iters":   cfg.HotLoops.MinAvgIters,
		},
	})
	refStatus, refBody := do(refH, "POST", "/sessions", createBody)
	fltStatus, fltBody := ef.fl.do("POST", "/sessions", createBody)
	if refStatus != fltStatus || !bytes.Equal(refBody, fltBody) {
		rep.violate(Violation{Kind: KindDriftElastic,
			Detail: fmt.Sprintf("session create diverges: single %d %s, fleet %d %s",
				refStatus, refBody, fltStatus, fltBody)})
		return
	}
	if refStatus != http.StatusCreated {
		return // load failure on both paths is covered by the server pass
	}
	var info server.SessionInfo
	if err := json.Unmarshal(refBody, &info); err != nil {
		rep.violate(Violation{Kind: KindDriftElastic, Detail: fmt.Sprintf("bad session info: %v", err)})
		return
	}

	// Serial phase: golds through the static two-backend fleet.
	type gold struct {
		scheme string
		path   string
		body   []byte
		want   []byte
		query  bool // coalesce marker is timing, not semantics
	}
	var golds []gold
	for _, scheme := range cfg.Schemes {
		reqBody, _ := json.Marshal(map[string]any{"scheme": scheme.String()})
		path := "/sessions/" + info.ID + "/analyze"
		rs, rb := do(refH, "POST", path, reqBody)
		fs, fb := ef.fl.do("POST", path, reqBody)
		if rs != fs || !bytes.Equal(rb, fb) {
			rep.violate(Violation{Kind: KindDriftElastic, Scheme: scheme.String(),
				Detail: fmt.Sprintf("analyze envelope diverges:\n  single: %d %s\n  fleet:  %d %s", rs, rb, fs, fb)})
			continue
		}
		if rs != http.StatusOK {
			continue
		}
		golds = append(golds, gold{scheme: scheme.String(), path: path, body: reqBody, want: rb})
		var resp server.AnalyzeResponse
		if err := json.Unmarshal(rb, &resp); err != nil {
			rep.violate(Violation{Kind: KindDriftElastic, Scheme: scheme.String(),
				Detail: fmt.Sprintf("bad analyze response: %v", err)})
			continue
		}
		n := 0
		for _, lr := range resp.Results {
			for _, q := range lr.Queries {
				if n >= fleetQueryCap {
					break
				}
				n++
				qb, _ := json.Marshal(server.QueryRequest{
					Scheme: scheme.String(), Loop: lr.Loop, I1: q.I1, I2: q.I2, Rel: q.Rel,
				})
				qpath := "/sessions/" + info.ID + "/query"
				rqs, rqb := do(refH, "POST", qpath, qb)
				fqs, fqb := ef.fl.do("POST", qpath, qb)
				if rqs != fqs || !bytes.Equal(rqb, fqb) {
					rep.violate(Violation{Kind: KindDriftElastic, Scheme: scheme.String(), Loop: lr.Loop,
						Detail: fmt.Sprintf("query diverges:\n  single: %d %s\n  fleet:  %d %s", rqs, rqb, fqs, fqb)})
					continue
				}
				if rqs == http.StatusOK {
					golds = append(golds, gold{scheme: scheme.String(), path: qpath, body: qb, want: rqb, query: true})
				}
			}
		}
	}
	if len(golds) == 0 {
		return
	}
	// Let the backends' AutoFlush publish resolved entries to their ring
	// owners, so the join actually has warm segments to stream.
	time.Sleep(50 * time.Millisecond)

	// Join phase: grow the fleet while concurrent clients replay every
	// gold. A bounded run of 503 backend_down on moving segments is the
	// only detour the cutover may show them; the final bytes must be gold.
	var (
		wg  sync.WaitGroup
		vmu sync.Mutex
		sem = make(chan struct{}, 8)
	)
	for _, g := range golds {
		wg.Add(1)
		go func(g gold) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, b, retries := ef.retryDo("POST", g.path, g.body)
			got, want := b, g.want
			if g.query {
				got, want = stripCoalesce(got), stripCoalesce(want)
			}
			if s != http.StatusOK || !bytes.Equal(got, want) {
				vmu.Lock()
				rep.violate(Violation{Kind: KindDriftElastic, Scheme: g.scheme,
					Detail: fmt.Sprintf("answer under live join diverges after %d retries:\n  gold: %s\n  got:  %d %s",
						retries, g.want, s, b)})
				vmu.Unlock()
			}
		}(g)
	}
	joinBody, _ := json.Marshal(server.JoinRequest{ID: "j0", URL: ef.joinerURL})
	js, jb := ef.fl.do("POST", "/fleet/join", joinBody)
	wg.Wait()
	if js != http.StatusOK {
		rep.violate(Violation{Kind: KindDriftElastic, Detail: fmt.Sprintf("join failed: %d %s", js, jb)})
		return
	}
	var joinRep server.MoveReport
	if err := json.Unmarshal(jb, &joinRep); err != nil {
		rep.violate(Violation{Kind: KindDriftElastic, Detail: fmt.Sprintf("bad join report: %v", err)})
		return
	}

	// Post-join serial replay: the grown fleet must serve the same bytes,
	// including on segments now owned by the joiner.
	replay := func(phase string) bool {
		ok := true
		for _, g := range golds {
			s, b := ef.fl.do("POST", g.path, g.body)
			got, want := b, g.want
			if g.query {
				got, want = stripCoalesce(got), stripCoalesce(want)
			}
			if s != http.StatusOK || !bytes.Equal(got, want) {
				ok = false
				rep.violate(Violation{Kind: KindDriftElastic, Scheme: g.scheme,
					Detail: fmt.Sprintf("%s answer diverges:\n  gold: %s\n  got:  %d %s", phase, g.want, s, b)})
			}
		}
		return ok
	}
	if !replay("post-join") {
		return
	}

	// Nonvacuity: if the grown ring moved at least one analyze segment
	// onto the joiner, the post-join replay above routed those loops to it
	// and its loop lookaside — warmed by the streamed segments and its new
	// peers — must have hit. Byte equality achieved by silently recomputing
	// everything from scratch would pass the replay; this catches it.
	grown := fleet.NewRing([]string{"b0", "b1", "j0"}, 0)
	movedAnalyze := 0
	for _, scheme := range cfg.Schemes {
		for _, l := range a.hot {
			if grown.Owner("a|"+info.ID+"|"+scheme.String()+"|"+l.Name()) == "j0" {
				movedAnalyze++
			}
		}
	}
	if movedAnalyze > 0 {
		var jm server.MetricsResponse
		if err := ef.joinerMetrics(&jm); err != nil {
			rep.violate(Violation{Kind: KindDriftElastic, Detail: fmt.Sprintf("joiner metrics: %v", err)})
			return
		}
		rep.ElasticWarmHits += jm.Server.FleetLoopHits
		if jm.Server.FleetLoopHits == 0 {
			rep.violate(Violation{Kind: KindDriftElastic,
				Detail: fmt.Sprintf("%d analyze segments moved to the joiner (join streamed %d entries) but its loop lookaside never hit",
					movedAnalyze, joinRep.EntriesInserted)})
		}
	}

	// Leave phase: the dual. An original owner departs, handing its
	// segments to the survivors; the shrunk fleet must still serve gold.
	leaveBody, _ := json.Marshal(server.LeaveRequest{ID: "b0"})
	ls, lb := ef.fl.do("POST", "/fleet/leave", leaveBody)
	if ls != http.StatusOK {
		rep.violate(Violation{Kind: KindDriftElastic, Detail: fmt.Sprintf("leave failed: %d %s", ls, lb)})
		return
	}
	if !replay("post-leave") {
		return
	}

	// A planned move must never manufacture split brain or wedge the
	// router: zero broadcast inconsistencies, zero rollbacks, no move
	// still pending.
	ms, mb := ef.fl.do("GET", "/metrics", nil)
	var rm server.RouterMetrics
	if ms != http.StatusOK || json.Unmarshal(mb, &rm) != nil {
		rep.violate(Violation{Kind: KindDriftElastic, Detail: fmt.Sprintf("router metrics unreadable: %d %s", ms, mb)})
		return
	}
	rc := rm.Router
	if rc.Inconsistent != 0 || rc.Rollbacks != 0 || rc.Pending != "" || rc.Joins != 1 || rc.Leaves != 1 {
		rep.violate(Violation{Kind: KindDriftElastic,
			Detail: fmt.Sprintf("router counters after join+leave: inconsistent=%d rollbacks=%d pending=%q joins=%d leaves=%d",
				rc.Inconsistent, rc.Rollbacks, rc.Pending, rc.Joins, rc.Leaves)})
	}
}

// elasticFleet is the fleet-pass topology plus one spare backend the join
// phase grows into.
type elasticFleet struct {
	fl        *oracleFleet
	joinerURL string
	client    *http.Client
	shutdown  func()
}

// retryDo replays one request through the router, retrying bounded 503
// backend_down responses (the drained-cutover window) after the advertised
// Retry-After. It returns the final status, body, and retry count.
func (ef *elasticFleet) retryDo(method, path string, body []byte) (int, []byte, int) {
	for retries := 0; ; retries++ {
		req, err := http.NewRequest(method, ef.fl.url+path, bytes.NewReader(body))
		if err != nil {
			return 0, []byte(err.Error()), retries
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := ef.client.Do(req)
		if err != nil {
			return 0, []byte(err.Error()), retries
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, []byte(err.Error()), retries
		}
		if resp.StatusCode != http.StatusServiceUnavailable || retries >= elasticRetryCap {
			return resp.StatusCode, b, retries
		}
		// Honor Retry-After, capped so the pass stays fast on loopback
		// (the router advertises whole seconds; the window is far shorter).
		delay := 25 * time.Millisecond
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			if d := time.Duration(ra) * time.Second / 20; d > delay {
				delay = d
			}
		}
		time.Sleep(delay)
	}
}

// joinerMetrics reads the joiner backend's /metrics directly (not through
// the router), so its lookaside counters are observed, not inferred.
func (ef *elasticFleet) joinerMetrics(m *server.MetricsResponse) error {
	resp, err := ef.client.Get(ef.joinerURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return json.Unmarshal(b, m)
}

// bootElasticFleet boots two member backends and a router, like
// bootOracleFleet, plus a spare backend (peers: both members) standing by
// for the live join.
func bootElasticFleet() (*elasticFleet, error) {
	ids := []string{"b0", "b1", "j0"}
	listeners := make([]net.Listener, len(ids)+1)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, p := range listeners[:i] {
				p.Close()
			}
			return nil, err
		}
		listeners[i] = l
	}
	urls := map[string]string{}
	for i, id := range ids {
		urls[id] = "http://" + listeners[i].Addr().String()
	}

	var backends []*server.Server
	var httpSrvs []*http.Server
	for i, id := range ids {
		peers := map[string]string{}
		for _, pid := range ids {
			// Members peer with each other; the spare knows the members
			// (they learn of it through the join's membership push).
			if pid != id && pid != "j0" {
				peers[pid] = urls[pid]
			}
		}
		srv := server.New(server.Config{Workers: 2, Fleet: &server.FleetConfig{
			Self: id, Peers: peers, Timeout: 5 * time.Second, AutoFlush: 10 * time.Millisecond,
		}})
		backends = append(backends, srv)
		hs := &http.Server{Handler: srv.Handler()}
		httpSrvs = append(httpSrvs, hs)
		go hs.Serve(listeners[i])
	}
	rt := server.NewRouter(server.RouterConfig{
		Backends:     map[string]string{"b0": urls["b0"], "b1": urls["b1"]},
		Route:        "hash",
		DrainTimeout: 15 * time.Second,
	})
	rhs := &http.Server{Handler: rt.Handler()}
	httpSrvs = append(httpSrvs, rhs)
	go rhs.Serve(listeners[len(ids)])

	client := &http.Client{Timeout: 30 * time.Second}
	ef := &elasticFleet{
		fl: &oracleFleet{
			url:    "http://" + listeners[len(ids)].Addr().String(),
			client: client,
		},
		joinerURL: urls["j0"],
		client:    client,
	}
	ef.shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		client.CloseIdleConnections()
		rt.Close()
		for _, srv := range backends {
			srv.Shutdown(ctx)
		}
		for _, hs := range httpSrvs {
			hs.Shutdown(ctx)
		}
	}
	return ef, nil
}
