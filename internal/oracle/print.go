package oracle

import (
	"fmt"
	"strconv"
	"strings"

	"scaf/internal/lang"
)

// Print renders a parsed MC file back to compilable source. The printer is
// deterministic (identical ASTs produce identical bytes) and conservative:
// every non-atomic subexpression is parenthesized, so operator precedence
// never has to be reconstructed. Print∘Parse is semantics-preserving; the
// round-trip test checks that the reprinted source lowers to IR that
// behaves identically.
func Print(f *lang.File) string {
	p := &printer{}
	for _, sd := range f.Structs {
		p.structDecl(sd)
	}
	for _, g := range f.Globals {
		p.printf("%s;\n", declString(g))
	}
	for _, fd := range f.Funcs {
		p.funcDecl(fd)
	}
	return p.b.String()
}

type printer struct {
	b     strings.Builder
	depth int
}

func (p *printer) printf(format string, args ...interface{}) {
	fmt.Fprintf(&p.b, format, args...)
}

func (p *printer) indent() string { return strings.Repeat("    ", p.depth) }

// typePrefix renders the part of a type that precedes the name.
func typePrefix(te *lang.TypeExpr) string {
	var base string
	switch te.Base {
	case lang.KWStruct:
		base = "struct " + te.StructName
	default:
		base = te.Base.String() // int, float, void
	}
	return base + strings.Repeat("*", te.Stars)
}

// declString renders "type name[dims]" for a variable declaration.
func declString(d *lang.VarDecl) string {
	s := typePrefix(d.TE) + " " + d.Name
	for _, n := range d.TE.ArrayLens {
		s += fmt.Sprintf("[%d]", n)
	}
	return s
}

func (p *printer) structDecl(sd *lang.StructDecl) {
	p.printf("struct %s {\n", sd.Name)
	for _, fld := range sd.Fields {
		p.printf("    %s;\n", declString(fld))
	}
	p.printf("};\n")
}

func (p *printer) funcDecl(fd *lang.FuncDecl) {
	params := make([]string, len(fd.Params))
	for i, pr := range fd.Params {
		params[i] = declString(pr)
	}
	p.printf("%s %s(%s) ", typePrefix(fd.Ret), fd.Name, strings.Join(params, ", "))
	p.blockStmt(fd.Body)
	p.printf("\n")
}

func (p *printer) blockStmt(b *lang.BlockStmt) {
	p.printf("{\n")
	p.depth++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.depth--
	p.printf("%s}", p.indent())
}

// stmtInline renders a statement used as a loop/if body: blocks print
// inline, everything else gets its own braces so dangling-else can never
// rebind.
func (p *printer) stmtInline(s lang.Stmt) {
	if b, ok := s.(*lang.BlockStmt); ok {
		p.blockStmt(b)
		return
	}
	p.printf("{\n")
	p.depth++
	p.stmt(s)
	p.depth--
	p.printf("%s}", p.indent())
}

func (p *printer) stmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		p.printf("%s", p.indent())
		p.blockStmt(s)
		p.printf("\n")
	case *lang.DeclStmt:
		if s.Decl.Init != nil {
			p.printf("%s%s = %s;\n", p.indent(), declString(s.Decl), exprString(s.Decl.Init))
		} else {
			p.printf("%s%s;\n", p.indent(), declString(s.Decl))
		}
	case *lang.ExprStmt:
		p.printf("%s%s;\n", p.indent(), exprStmtString(s.X))
	case *lang.IfStmt:
		p.printf("%sif (%s) ", p.indent(), exprStmtString(s.Cond))
		p.stmtInline(s.Then)
		if s.Else != nil {
			p.printf(" else ")
			p.stmtInline(s.Else)
		}
		p.printf("\n")
	case *lang.WhileStmt:
		p.printf("%swhile (%s) ", p.indent(), exprStmtString(s.Cond))
		p.stmtInline(s.Body)
		p.printf("\n")
	case *lang.ForStmt:
		p.printf("%sfor (", p.indent())
		switch init := s.Init.(type) {
		case *lang.DeclStmt:
			if init.Decl.Init != nil {
				p.printf("%s = %s", declString(init.Decl), exprString(init.Decl.Init))
			} else {
				p.printf("%s", declString(init.Decl))
			}
		case *lang.ExprStmt:
			p.printf("%s", exprStmtString(init.X))
		}
		p.printf("; ")
		if s.Cond != nil {
			p.printf("%s", exprStmtString(s.Cond))
		}
		p.printf("; ")
		if s.Post != nil {
			p.printf("%s", exprStmtString(s.Post))
		}
		p.printf(") ")
		p.stmtInline(s.Body)
		p.printf("\n")
	case *lang.ReturnStmt:
		if s.X != nil {
			p.printf("%sreturn %s;\n", p.indent(), exprStmtString(s.X))
		} else {
			p.printf("%sreturn;\n", p.indent())
		}
	case *lang.BreakStmt:
		p.printf("%sbreak;\n", p.indent())
	case *lang.ContinueStmt:
		p.printf("%scontinue;\n", p.indent())
	default:
		panic(fmt.Sprintf("oracle: unprintable statement %T", s))
	}
}

// exprStmtString renders an expression in statement position: top-level
// assignments and conditions drop their outer parentheses for readability.
func exprStmtString(x lang.Expr) string {
	if a, ok := x.(*lang.Assign); ok {
		return fmt.Sprintf("%s %s %s", exprString(a.LHS), a.Op, exprString(a.RHS))
	}
	if b, ok := x.(*lang.Binary); ok {
		return fmt.Sprintf("%s %s %s", exprString(b.X), b.Op, exprString(b.Y))
	}
	return exprString(x)
}

// exprString renders an expression with full parenthesization of every
// compound form.
func exprString(x lang.Expr) string {
	switch x := x.(type) {
	case *lang.Ident:
		return x.Name
	case *lang.IntLit:
		return strconv.FormatInt(x.V, 10)
	case *lang.FloatLit:
		s := strconv.FormatFloat(x.V, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	case *lang.Unary:
		return fmt.Sprintf("(%s%s)", x.Op, exprString(x.X))
	case *lang.Binary:
		return fmt.Sprintf("(%s %s %s)", exprString(x.X), x.Op, exprString(x.Y))
	case *lang.Assign:
		return fmt.Sprintf("(%s %s %s)", exprString(x.LHS), x.Op, exprString(x.RHS))
	case *lang.CastExpr:
		return fmt.Sprintf("((%s)%s)", x.To, exprString(x.X))
	case *lang.Call:
		args := make([]string, 0, len(x.Args)+1)
		if x.TypeArg != nil {
			t := typePrefix(x.TypeArg)
			for _, n := range x.TypeArg.ArrayLens {
				t += fmt.Sprintf("[%d]", n)
			}
			args = append(args, t)
		}
		for _, a := range x.Args {
			args = append(args, exprString(a))
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	case *lang.Index:
		return fmt.Sprintf("%s[%s]", postfixBase(x.X), exprStmtString(x.Idx))
	case *lang.Member:
		op := "."
		if x.Arrow {
			op = "->"
		}
		return fmt.Sprintf("%s%s%s", postfixBase(x.X), op, x.Name)
	default:
		panic(fmt.Sprintf("oracle: unprintable expression %T", x))
	}
}

// postfixBase renders the operand of a postfix operator: atoms and other
// postfix forms bind tightly already, everything else is parenthesized.
func postfixBase(x lang.Expr) string {
	switch x.(type) {
	case *lang.Ident, *lang.Index, *lang.Member, *lang.Call:
		return exprString(x)
	}
	return "(" + exprString(x) + ")"
}
