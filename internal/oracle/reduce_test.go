package oracle

import (
	"strings"
	"testing"

	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/lang"
	"scaf/internal/mcgen"
)

// buggyModule is the test-only soundness-bug hook: a memory-analysis
// module that wrongly answers NoModRef whenever its shape predicate
// matches. NoModRef is definite and validation-free, so the orchestrator
// adopts it — exactly the class of bug the oracle exists to catch.
type buggyModule struct {
	core.BaseModule
	name  string
	wrong func(q *core.ModRefQuery) bool
}

func (m *buggyModule) Name() string          { return m.name }
func (m *buggyModule) Kind() core.ModuleKind { return core.MemoryAnalysis }

func (m *buggyModule) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if m.wrong(q) {
		return core.ModRefFact(core.NoModRef, m.name)
	}
	return core.ModRefConservative()
}

// The three injected bugs. Each is a fresh stateless instance per mint, so
// parallel workers never share state.

// crossIterBug disproves every cross-iteration dependence.
func crossIterBug() []core.Module {
	return []core.Module{&buggyModule{name: "bug-cross-iter",
		wrong: func(q *core.ModRefQuery) bool { return q.Rel == core.Before }}}
}

// storeLoadBug disproves store→load (flow) dependences.
func storeLoadBug() []core.Module {
	return []core.Module{&buggyModule{name: "bug-store-load",
		wrong: func(q *core.ModRefQuery) bool {
			return q.I1.Op == ir.OpStore && q.I2.Op == ir.OpLoad
		}}}
}

// callBug disproves every dependence with a call endpoint (wrongly assumes
// callees touch nothing).
func callBug() []core.Module {
	return []core.Module{&buggyModule{name: "bug-call",
		wrong: func(q *core.ModRefQuery) bool {
			return q.I1.Op == ir.OpCall || q.I2.Op == ir.OpCall
		}}}
}

// reduceBudget is the fixed statement budget of the acceptance criteria: a
// minimized reproducer (an array, a loop, the conflicting accesses, and
// the observation that keeps them profiled) fits well within it.
const reduceBudget = 12

// TestReducerShrinksInjectedBugs: for each injected soundness bug, find a
// failing generated program, ddmin it, and require the result to be both
// small (≤ budget) and still failing — the reducer's entire contract.
func TestReducerShrinksInjectedBugs(t *testing.T) {
	bugs := []struct {
		name string
		mods func() []core.Module
	}{
		{"cross-iter", crossIterBug},
		{"store-load", storeLoadBug},
		{"call", callBug},
	}
	for _, bug := range bugs {
		bug := bug
		t.Run(bug.name, func(t *testing.T) {
			cfg := FastConfig()
			cfg.ExtraModules = bug.mods

			interesting := func(src string) bool {
				rep, err := CheckProgram(cfg, "reduce", src)
				return err == nil && rep.HasViolation(KindUnsound)
			}

			// Find a seed the bug breaks. The generator emits conflicting
			// array accesses frequently; a bounded scan is deterministic.
			var src string
			for seed := int64(1); seed <= 120; seed++ {
				cand := mcgen.New(seed).Program()
				if interesting(cand) {
					src = cand
					break
				}
			}
			if src == "" {
				t.Fatalf("no seed in 1..120 triggers the %s bug", bug.name)
			}

			before := CountStmts(src)
			red := Reduce(src, interesting)
			if !interesting(red.Source) {
				t.Fatalf("reduced program no longer fails the oracle:\n%s", red.Source)
			}
			if red.Stmts > reduceBudget {
				t.Fatalf("reduced to %d statements, budget is %d (from %d):\n%s",
					red.Stmts, reduceBudget, before, red.Source)
			}
			if red.Stmts >= before {
				t.Fatalf("no shrink: %d -> %d statements", before, red.Stmts)
			}
			t.Logf("%s: %d -> %d statements in %d oracle evaluations",
				bug.name, before, red.Stmts, red.Tests)
		})
	}
}

// TestReduceBoringInputUnchanged: an input that never fails comes back
// unchanged after exactly one predicate evaluation.
func TestReduceBoringInputUnchanged(t *testing.T) {
	src := mcgen.New(7).Program()
	res := Reduce(src, func(string) bool { return false })
	if res.Source != src || res.Tests != 1 {
		t.Fatalf("boring input was modified (tests=%d)", res.Tests)
	}
}

// TestReducePredicateNeverSeesBrokenPrograms: every candidate the reducer
// hands the predicate parses — the reducer edits ASTs, not text — though
// it may not compile (sema errors), which the predicate must tolerate.
func TestReducePredicateNeverSeesBrokenPrograms(t *testing.T) {
	src := mcgen.New(11).Program()
	base := CountStmts(src)
	calls := 0
	Reduce(src, func(cand string) bool {
		calls++
		if _, err := lang.Parse("cand", cand); err != nil {
			t.Fatalf("reducer produced an unparsable candidate: %v\n%s", err, cand)
		}
		// Interesting = retains at least half the statements; forces real
		// ddmin traffic without an analysis in the loop.
		return CountStmts(cand) >= base/2
	})
	if calls < 10 {
		t.Fatalf("suspiciously few predicate evaluations: %d", calls)
	}
}

// TestCountStmts pins the statement metric the budget is measured in.
func TestCountStmts(t *testing.T) {
	src := `
int g[8];
void main() {
    int x = 1;
    for (int i = 0; i < 8; i++) {
        g[i] = x;
    }
    print(g[0]);
}
`
	// int x; for; (decl init counts as part of ForStmt's Init → decl);
	// store; print — walkStmt counts: DeclStmt(x), ForStmt, DeclStmt(i),
	// ExprStmt(store), ExprStmt(print).
	if n := CountStmts(src); n != 5 {
		t.Fatalf("CountStmts = %d, want 5", n)
	}
	if n := CountStmts("not a program"); n != 0 {
		t.Fatalf("CountStmts(non-program) = %d, want 0", n)
	}
}

// TestFormatRepro pins the reproducer file format: header comments the MC
// lexer skips, then the program.
func TestFormatRepro(t *testing.T) {
	rep := &Report{Seed: 42, Name: "seed42"}
	rep.violate(Violation{Kind: KindUnsound, Scheme: "SCAF", Loop: "main/for_head.2",
		Detail: "disproved manifested dep\nlong tail"})
	red := ReduceResult{Source: "void main() { print(1); }\n", Stmts: 1, Tests: 9}
	out := FormatRepro(rep, red)
	for _, want := range []string{
		"// scaf-oracle reproducer",
		"// origin: mcgen seed 42",
		"// reduced: 1 statements (9 oracle evaluations)",
		"// violates: unsound [SCAF] main/for_head.2: disproved manifested dep",
		"void main() { print(1); }",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("repro file missing %q:\n%s", want, out)
		}
	}
	// The header must not break the MC front-end.
	if out2 := run(t, "repro", out); len(out2) != 1 || out2[0] != "1" {
		t.Fatalf("repro file does not run: %v", out2)
	}
}
