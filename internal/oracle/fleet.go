package oracle

// The fleet pass is the serving-tier analogue of checkServerDrift: where
// that check proves one daemon's HTTP answers equal the library's, this
// one proves a sharded fleet — two backends wired as cache peers behind a
// consistent-hash scaf-router — is indistinguishable, at the byte level,
// from a single cold instance. Every response body is compared verbatim:
// the create envelope (broadcast consensus), the analyze envelope (the
// router splices per-shard fan-out results back into one batch), and every
// dependence query, first serially and then under concurrent fire, where
// remote cache hits and coalescing are actually exercised.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"scaf/internal/server"
)

// fleetQueryCap bounds the per-scheme query set replayed through the
// fleet; random oracle programs rarely exceed it.
const fleetQueryCap = 64

// checkFleetDrift boots the reference instance and the fleet, replays an
// identical session lifecycle against both, and reports any byte
// divergence as KindDriftFleet.
func checkFleetDrift(cfg Config, rep *Report, a *analysis) {
	refSrv := server.New(server.Config{Workers: 2})
	refH := refSrv.Handler()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		refSrv.Shutdown(ctx)
	}()

	fl, err := bootOracleFleet()
	if err != nil {
		rep.violate(Violation{Kind: KindDriftFleet, Detail: fmt.Sprintf("fleet boot: %v", err)})
		return
	}
	defer fl.shutdown()

	createBody, _ := json.Marshal(map[string]any{
		"name": a.name, "source": a.src, "plan": "off",
		"hot_loops": map[string]float64{
			"min_weight_frac": cfg.HotLoops.MinWeightFrac,
			"min_avg_iters":   cfg.HotLoops.MinAvgIters,
		},
	})
	refStatus, refBody := do(refH, "POST", "/sessions", createBody)
	fltStatus, fltBody := fl.do("POST", "/sessions", createBody)
	if refStatus != fltStatus || !bytes.Equal(refBody, fltBody) {
		rep.violate(Violation{Kind: KindDriftFleet,
			Detail: fmt.Sprintf("session create diverges: single %d %s, fleet %d %s",
				refStatus, refBody, fltStatus, fltBody)})
		return
	}
	if refStatus != http.StatusCreated {
		rep.violate(Violation{Kind: KindDriftFleet,
			Detail: fmt.Sprintf("session load failed on both paths: status %d: %s", refStatus, refBody)})
		return
	}
	var info server.SessionInfo
	if err := json.Unmarshal(refBody, &info); err != nil {
		rep.violate(Violation{Kind: KindDriftFleet, Detail: fmt.Sprintf("bad session info: %v", err)})
		return
	}

	// Serial phase: analyze envelopes and every harvested query.
	type gold struct {
		path string
		body []byte
		want []byte
	}
	var golds []gold
	for _, scheme := range cfg.Schemes {
		reqBody, _ := json.Marshal(map[string]any{"scheme": scheme.String()})
		path := "/sessions/" + info.ID + "/analyze"
		rs, rb := do(refH, "POST", path, reqBody)
		fs, fb := fl.do("POST", path, reqBody)
		if rs != fs || !bytes.Equal(rb, fb) {
			rep.violate(Violation{Kind: KindDriftFleet, Scheme: scheme.String(),
				Detail: fmt.Sprintf("analyze envelope diverges:\n  single: %d %s\n  fleet:  %d %s", rs, rb, fs, fb)})
			continue
		}
		if rs != http.StatusOK {
			rep.violate(Violation{Kind: KindDriftFleet, Scheme: scheme.String(),
				Detail: fmt.Sprintf("analyze failed on both paths: status %d: %s", rs, rb)})
			continue
		}
		var resp server.AnalyzeResponse
		if err := json.Unmarshal(rb, &resp); err != nil {
			rep.violate(Violation{Kind: KindDriftFleet, Scheme: scheme.String(),
				Detail: fmt.Sprintf("bad analyze response: %v", err)})
			continue
		}
		n := 0
		for _, lr := range resp.Results {
			for _, q := range lr.Queries {
				if n >= fleetQueryCap {
					break
				}
				n++
				qb, _ := json.Marshal(server.QueryRequest{
					Scheme: scheme.String(), Loop: lr.Loop, I1: q.I1, I2: q.I2, Rel: q.Rel,
				})
				qpath := "/sessions/" + info.ID + "/query"
				rqs, rqb := do(refH, "POST", qpath, qb)
				fqs, fqb := fl.do("POST", qpath, qb)
				if rqs != fqs || !bytes.Equal(rqb, fqb) {
					rep.violate(Violation{Kind: KindDriftFleet, Scheme: scheme.String(), Loop: lr.Loop,
						Detail: fmt.Sprintf("query %s/%s %s diverges:\n  single: %d %s\n  fleet:  %d %s",
							q.I1, q.I2, q.Rel, rqs, rqb, fqs, fqb)})
					continue
				}
				if rqs == http.StatusOK {
					golds = append(golds, gold{path: qpath, body: qb, want: rqb})
				}
			}
		}
	}

	// Parallel phase: the serial gold bytes must survive concurrent fire
	// through the router, where shard fan-out, remote cache hits, and
	// query coalescing all interleave. Coalesce markers live in the
	// response envelope's optional fields, so a coalesced hit that changed
	// the bytes would be caught here.
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		sem = make(chan struct{}, 8)
	)
	for _, g := range golds {
		wg.Add(1)
		go func(g gold) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, b := fl.do("POST", g.path, g.body)
			if s != http.StatusOK || !bytes.Equal(stripCoalesce(b), stripCoalesce(g.want)) {
				mu.Lock()
				rep.violate(Violation{Kind: KindDriftFleet,
					Detail: fmt.Sprintf("parallel query diverges from serial gold:\n  serial:   %s\n  parallel: %d %s",
						g.want, s, b)})
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
}

// stripCoalesce removes the scheduling-dependent "coalesced" marker from a
// query response before comparison: whether two concurrent identical
// queries share one resolution is timing, not semantics. The query payload
// itself is compared verbatim.
func stripCoalesce(body []byte) []byte {
	var resp server.QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return body
	}
	resp.Coalesced = false
	out, err := json.Marshal(resp)
	if err != nil {
		return body
	}
	return out
}

// oracleFleet is two peer backends behind a router, all on loopback.
type oracleFleet struct {
	url      string
	client   *http.Client
	shutdown func()
}

func (f *oracleFleet) do(method, path string, body []byte) (int, []byte) {
	req, err := http.NewRequest(method, f.url+path, bytes.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, []byte(err.Error())
	}
	return resp.StatusCode, b
}

func bootOracleFleet() (*oracleFleet, error) {
	const n = 2
	listeners := make([]net.Listener, n+1)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, p := range listeners[:i] {
				p.Close()
			}
			return nil, err
		}
		listeners[i] = l
	}
	urls := map[string]string{}
	for i := 0; i < n; i++ {
		urls[fmt.Sprintf("b%d", i)] = "http://" + listeners[i].Addr().String()
	}

	var backends []*server.Server
	var httpSrvs []*http.Server
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("b%d", i)
		peers := map[string]string{}
		for pid, u := range urls {
			if pid != id {
				peers[pid] = u
			}
		}
		srv := server.New(server.Config{Workers: 2, Fleet: &server.FleetConfig{
			Self: id, Peers: peers, Timeout: 5 * time.Second, AutoFlush: 10 * time.Millisecond,
		}})
		backends = append(backends, srv)
		hs := &http.Server{Handler: srv.Handler()}
		httpSrvs = append(httpSrvs, hs)
		go hs.Serve(listeners[i])
	}
	rt := server.NewRouter(server.RouterConfig{Backends: urls, Route: "hash"})
	rhs := &http.Server{Handler: rt.Handler()}
	httpSrvs = append(httpSrvs, rhs)
	go rhs.Serve(listeners[n])

	fl := &oracleFleet{
		url:    "http://" + listeners[n].Addr().String(),
		client: &http.Client{Timeout: 30 * time.Second},
	}
	fl.shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Client-side connection pools close first: a spare pooled
		// connection is StateNew on its server, and Shutdown waits five
		// seconds before reaping those.
		fl.client.CloseIdleConnections()
		rt.Close()
		for _, srv := range backends {
			srv.Shutdown(ctx)
		}
		for _, hs := range httpSrvs {
			hs.Shutdown(ctx)
		}
	}
	return fl, nil
}
