package oracle

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"scaf/internal/interp"
	"scaf/internal/lang"
	"scaf/internal/lower"
	"scaf/internal/mcgen"
)

// run compiles and interprets one MC program, returning its output lines.
func run(t *testing.T, name, src string) []string {
	t.Helper()
	mod, err := lower.Compile(name, src)
	if err != nil {
		t.Fatalf("%s does not compile: %v\n%s", name, err, src)
	}
	res, err := interp.Run(mod, interp.Options{})
	if err != nil {
		t.Fatalf("%s does not run: %v\n%s", name, err, src)
	}
	return res.Output
}

// TestPrintRoundTrip: Print∘Parse is observation-preserving and
// idempotent over generated programs — the printer is the foundation every
// transform and the reducer stand on.
func TestPrintRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		src := mcgen.New(seed).Program()
		f, err := lang.Parse("rt", src)
		if err != nil {
			t.Fatalf("seed %d does not parse: %v", seed, err)
		}
		p1 := Print(f)
		f2, err := lang.Parse("rt2", p1)
		if err != nil {
			t.Fatalf("seed %d reprint does not parse: %v\n%s", seed, err, p1)
		}
		if p2 := Print(f2); p2 != p1 {
			t.Fatalf("seed %d print not idempotent:\n--- first\n%s\n--- second\n%s", seed, p1, p2)
		}
		want := run(t, "orig", src)
		got := run(t, "printed", p1)
		if !equalOutput(want, got) {
			t.Fatalf("seed %d output changed by reprint: %q vs %q", seed, want, got)
		}
	}
}

// TestOracleSweep is the acceptance sweep: ≥200 mcgen seeds through the
// full oracle — soundness on every scheme, monotonicity, zero answer drift
// across serial/parallel/shared-cache/server, and metamorphic answer
// preservation — with nonvacuity floors so a silently-skipping check reads
// as a failure, not a pass.
func TestOracleSweep(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	cfg := FullConfig()
	var queries, applied, compared, hot int
	byTransform := map[string]int{}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		rep, err := CheckSeed(cfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("%s", rep.Summary())
		}
		queries += rep.Queries
		applied += rep.TransformsApplied
		compared += rep.ComparedLoops
		hot += rep.HotLoops
		for name, n := range rep.AppliedByTransform {
			byTransform[name] += n
		}
	}
	// Nonvacuity: the sweep must actually have exercised the checks.
	if hot == 0 || queries == 0 {
		t.Fatalf("vacuous sweep: %d hot loops, %d queries", hot, queries)
	}
	if applied < seeds {
		t.Errorf("only %d transform applications over %d seeds", applied, seeds)
	}
	if compared < 5*seeds {
		t.Errorf("only %d loop comparisons over %d seeds", compared, seeds)
	}
	for _, tr := range Transforms() {
		if byTransform[tr.Name] == 0 {
			t.Errorf("transform %q never applied over %d seeds", tr.Name, seeds)
		}
	}
}

// TestRecoverySweep drives the misspeculation-recovery pass alone over a
// window of seeds: inject lies, quarantine what the answers expose,
// re-analyze to a chaos-free fixpoint, and demand byte-equality with the
// fault-free reference plus soundness of the degraded answers. Nonvacuity
// floors make sure the chaos module actually lied and the quarantine
// actually turned.
func TestRecoverySweep(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	cfg := FastConfig()
	cfg.Recovery = true
	var lies, rounds int
	for seed := int64(1); seed <= int64(seeds); seed++ {
		rep, err := CheckSeed(cfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("%s", rep.Summary())
		}
		lies += rep.ChaosLies
		rounds += rep.RecoveryRounds
	}
	if lies == 0 || rounds == 0 {
		t.Fatalf("vacuous recovery sweep: %d lies quarantined, %d rounds over %d seeds", lies, rounds, seeds)
	}
	t.Logf("recovery sweep: %d lies quarantined over %d rounds (%d seeds)", lies, rounds, seeds)
}

// TestExecutionSweep drives the execution-equivalence pass alone over a
// window of seeds: every scheme's plans run under the speculative-parallel
// runtime and must match serial byte-for-byte; chaos-seeded runs force
// real misspeculations and must recover to byte-equality and converge.
// Nonvacuity floors require that speculation actually happened and that
// chaos actually forced aborts — the commit, abort, and refuse paths all
// get exercised because mcgen guarantees DOALL, almost-DOALL, and
// reduction loops in its output distribution.
func TestExecutionSweep(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	cfg := FastConfig()
	cfg.Execution = true
	var specIters int64
	var misspecs int
	for seed := int64(1); seed <= int64(seeds); seed++ {
		rep, err := CheckSeed(cfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("%s", rep.Summary())
		}
		specIters += rep.ExecSpecIters
		misspecs += rep.ExecMisspecs
	}
	if specIters == 0 {
		t.Fatalf("vacuous execution sweep: nothing was ever speculated over %d seeds", seeds)
	}
	if misspecs == 0 {
		t.Fatalf("vacuous execution sweep: chaos never forced a misspeculation over %d seeds", seeds)
	}
	t.Logf("execution sweep: %d speculative iterations, %d misspeculations recovered (%d seeds)",
		specIters, misspecs, seeds)
}

// TestCheckProgramRejectsInvalid: a non-compiling program is a caller
// error, not an analysis finding.
func TestCheckProgramRejectsInvalid(t *testing.T) {
	if _, err := CheckProgram(FastConfig(), "bad", "void main() { undeclared = 1; }"); err == nil {
		t.Fatal("CheckProgram accepted a non-compiling program")
	}
}

// TestSoundnessCatchesInjectedBug: the oracle predicate itself must fire
// when a module disproves manifested dependences (the reducer tests build
// on this in reduce_test.go).
func TestSoundnessCatchesInjectedBug(t *testing.T) {
	cfg := FastConfig()
	cfg.ExtraModules = crossIterBug
	found := false
	for seed := int64(1); seed <= 60 && !found; seed++ {
		rep, err := CheckSeed(cfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.HasViolation(KindUnsound) {
			found = true
		}
	}
	if !found {
		t.Fatal("injected cross-iteration bug never produced an unsound verdict over 60 seeds")
	}
}

// TestViolationString covers the failure-report formatting.
func TestViolationString(t *testing.T) {
	v := Violation{Kind: KindMetamorphic, Scheme: "CAF", Transform: "peel",
		Loop: "main/for_head.2", Detail: "x"}
	want := "metamorphic [CAF] <peel> main/for_head.2: x"
	if got := v.String(); got != want {
		t.Fatalf("Violation.String() = %q, want %q", got, want)
	}
}

// TestCorpusStillInteresting re-checks every committed corpus program:
// each must build, run, analyze cleanly under the full oracle, and keep
// the property that made it corpus-worthy — at least one dependence query
// in a hot loop.
func TestCorpusStillInteresting(t *testing.T) {
	files := corpusFiles(t)
	if len(files) < 10 {
		t.Fatalf("corpus has %d programs, want >= 10", len(files))
	}
	cfg := FullConfig()
	for _, fpath := range files {
		src := readFile(t, fpath)
		rep, err := CheckProgram(cfg, fpath, src)
		if err != nil {
			t.Errorf("%s: %v", fpath, err)
			continue
		}
		if rep.Failed() {
			t.Errorf("%s", rep.Summary())
		}
		if rep.Queries == 0 {
			t.Errorf("%s: no dependence queries — not interesting anymore", fpath)
		}
	}
}

func corpusFiles(t *testing.T) []string {
	t.Helper()
	entries, err := filepath.Glob("testdata/corpus/*.mc")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(entries)
	return entries
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHasViolation covers the kind filter.
func TestHasViolation(t *testing.T) {
	r := &Report{}
	r.violate(Violation{Kind: KindUnsound})
	if !r.HasViolation(KindUnsound) || r.HasViolation(KindDriftServer) {
		t.Fatal("HasViolation filter broken")
	}
	if !strings.Contains(r.Summary(), "1 violation") {
		t.Fatalf("Summary missing count: %s", r.Summary())
	}
}
