// Package scaf is a from-scratch reproduction of "SCAF: A
// Speculation-Aware Collaborative Dependence Analysis Framework"
// (Apostolakis et al., PLDI 2020).
//
// The package is the public facade over the full stack: the MC mini-C
// front-end and SSA lowering, the IR interpreter and the profilers that
// observe training runs, the CAF memory-analysis ensemble, the six
// speculation modules, and the Orchestrator that lets them collaborate.
//
// Typical use:
//
//	sys, err := scaf.Load("prog", source, scaf.Options{})
//	o := sys.Orchestrator(scaf.SchemeSCAF)
//	for _, loop := range sys.HotLoops() {
//	    res := sys.Client().ResolveLoop(o, loop)
//	    fmt.Printf("%s: %%NoDep = %.1f\n", loop.Name(), res.NoDepPct())
//	}
package scaf

import (
	"sync"
	"time"

	"scaf/internal/analysis"
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/interp"
	"scaf/internal/ir"
	"scaf/internal/lower"
	"scaf/internal/memspec"
	"scaf/internal/pdg"
	"scaf/internal/profile"
	"scaf/internal/spec"
	"scaf/internal/validate"
)

// Scheme selects how analysis and speculation compose (paper Table 1).
type Scheme int

const (
	// SchemeCAF uses memory analysis only — the collaborative analysis
	// framework of prior work, no speculation.
	SchemeCAF Scheme = iota
	// SchemeConfluence adds the speculation modules but composes by
	// confluence: every technique answers in isolation (premise queries
	// stay within prior-work technique bundles) and the best individual
	// answer wins.
	SchemeConfluence
	// SchemeSCAF is composition by collaboration: premise queries reach
	// every module.
	SchemeSCAF
)

func (s Scheme) String() string {
	switch s {
	case SchemeCAF:
		return "CAF"
	case SchemeConfluence:
		return "Confluence"
	}
	return "SCAF"
}

// Options configures Load.
type Options struct {
	// MaxSteps bounds the profiling run (0: interpreter default).
	MaxSteps int64
	// HotLoops overrides the paper's hot-loop thresholds.
	HotLoops *profile.HotLoopParams
}

// System is a compiled, profiled program ready for dependence analysis.
type System struct {
	Mod      *ir.Module
	Prog     *cfg.Program
	Profiles *profile.Data
	hot      profile.HotLoopParams

	internOnce sync.Once
	intern     *core.Interner
}

// Interner returns the system's session-scoped assertion-identity table,
// created on first use. Every orchestrator the system mints without a
// shared cache interns through it, so assertion handles compare equal
// across all of a session's orchestrators.
func (s *System) Interner() *core.Interner {
	s.internOnce.Do(func() { s.intern = core.NewInterner() })
	return s.intern
}

// Compile parses, checks, lowers and SSA-converts MC source.
func Compile(name, source string) (*ir.Module, error) {
	return lower.Compile(name, source)
}

// Load compiles source and runs the profiling ("train input") execution.
func Load(name, source string, opts Options) (*System, error) {
	mod, err := lower.Compile(name, source)
	if err != nil {
		return nil, err
	}
	prog := cfg.NewProgram(mod)
	data, err := profile.Collect(prog, interp.Options{MaxSteps: opts.MaxSteps})
	if err != nil {
		return nil, err
	}
	hot := profile.DefaultHotLoopParams()
	if opts.HotLoops != nil {
		hot = *opts.HotLoops
	}
	return &System{Mod: mod, Prog: prog, Profiles: data, hot: hot}, nil
}

// HotLoops returns the loops the paper evaluates on: ≥10% of execution
// time and ≥50 average iterations per invocation, heaviest first.
func (s *System) HotLoops() []*cfg.Loop { return s.Profiles.HotLoops(s.hot) }

// Client returns a PDG client over the program.
func (s *System) Client() *pdg.Client { return pdg.NewClient(s.Prog) }

// MemSpec returns the memory-speculation baseline.
func (s *System) MemSpec() *memspec.MemSpec { return memspec.New(s.Profiles) }

// Validate re-runs the program with runtime checks enforcing the given
// speculative assertions (the validation half of §4.2.1), reporting every
// misspeculation a client's recovery code would have had to handle. On
// the training input, assertions produced by this framework must validate
// cleanly.
func (s *System) Validate(asserts []core.Assertion) (*validate.Report, error) {
	return validate.Check(s.Prog, s.Profiles, asserts, interp.Options{})
}

// OrchOption customizes an Orchestrator.
type OrchOption func(*core.Config)

// WithLatency records per-query wall-clock latencies (Fig. 10).
func WithLatency() OrchOption {
	return func(c *core.Config) { c.RecordLatency = true }
}

// WithoutDesiredResult strips the desired-result parameter from every
// query (the Fig. 10 ablation).
func WithoutDesiredResult() OrchOption {
	return func(c *core.Config) { c.StripDesired = true }
}

// WithJoin overrides the join policy.
func WithJoin(j core.JoinPolicy) OrchOption {
	return func(c *core.Config) { c.Join = j }
}

// WithBailout overrides the bail-out policy.
func WithBailout(b core.BailoutPolicy) OrchOption {
	return func(c *core.Config) { c.Bailout = b }
}

// WithExtraModules appends additional modules to the ensemble (e.g. a
// custom speculation module; see examples/newmodule).
func WithExtraModules(mods ...core.Module) OrchOption {
	return func(c *core.Config) { c.Modules = append(c.Modules, mods...) }
}

// WithGroupOverrides merges replacement premise-routing groups into the
// scheme's defaults (used by the bundled-confluence ablation).
func WithGroupOverrides(groups map[string]string) OrchOption {
	return func(c *core.Config) {
		for k, v := range groups {
			c.Groups[k] = v
		}
	}
}

// WithCache memoizes query results for the orchestrator's lifetime.
func WithCache() OrchOption {
	return func(c *core.Config) { c.EnableCache = true }
}

// WithSharedCache attaches a concurrency-safe memo cache shared across
// orchestrators — typically the workers of a pdg.ParallelClient. Every
// orchestrator attached to one cache must be built from the same scheme
// and options: cached propositions embed module answers, so sharing a
// cache across configurations returns answers from the wrong ensemble.
func WithSharedCache(sc *core.SharedCache) OrchOption {
	return func(c *core.Config) { c.Shared = sc }
}

// WithRouting overrides the premise-routing policy independently of the
// scheme (the scheme's default is collaborative everywhere except
// SchemeConfluence, which isolates premise queries).
func WithRouting(r core.Routing) OrchOption {
	return func(c *core.Config) { c.Routing = r }
}

// WithModuleOrder overrides the scheme's fixed consult schedule with a
// learned one (applied by name inside core.NewOrchestrator, so it composes
// with WithExtraModules regardless of option order). Consult order is
// visible in answers — pass only orders LearnModuleOrder verified for the
// same scheme and options, or answers may drift from the fixed schedule's.
func WithModuleOrder(order []string) OrchOption {
	return func(c *core.Config) { c.ModuleOrder = order }
}

// WithTimeout bounds each top-level query's search time (the
// compilation-time-sensitive bail-out policy of §3.3).
func WithTimeout(d time.Duration) OrchOption {
	return func(c *core.Config) { c.Timeout = d }
}

// WithTracer attaches a query-resolution tracer (see internal/trace for
// the collector, JSONL schema, and DOT rendering). Tracers are confined to
// one orchestrator, so this option must not be used with
// OrchestratorFactory or ParallelClient — every minted orchestrator would
// share the tracer concurrently. Parallel runs attach per-worker tracers
// through pdg.ParallelClient.NewTracer instead.
func WithTracer(t core.Tracer) OrchOption {
	return func(c *core.Config) { c.Tracer = t }
}

// WithModuleWrapper interposes a rewrite on the final module list (after
// every other option has shaped it) — the seam misspeculation recovery
// uses to filter quarantined assertions at the module boundary
// (recovery.Wrapper). The hook runs inside core.NewOrchestrator, so it
// composes with OrchestratorFactory/ParallelClient as long as the wrapper
// itself is safe to share across workers.
func WithModuleWrapper(wrap func([]core.Module) []core.Module) OrchOption {
	return func(c *core.Config) { c.WrapModules = wrap }
}

// WithPanicIsolation converts a panicking module evaluation into a
// conservative answer plus a Stats.ModulePanics increment instead of a
// crash; onPanic (optional) observes the offender's name and the recovered
// value — the server uses it to quarantine the module. Panicked
// resolutions are tainted and never published to any cache.
func WithPanicIsolation(onPanic func(module string, recovered any)) OrchOption {
	return func(c *core.Config) {
		c.IsolatePanics = true
		c.OnModulePanic = onPanic
	}
}

// WithoutTreeSubstitution disables control speculation's speculative
// dominator-tree premise queries (ablation; its spec-dead rule remains).
func WithoutTreeSubstitution() OrchOption {
	return func(c *core.Config) {
		for _, m := range c.Modules {
			if cs, ok := m.(*spec.ControlSpec); ok {
				cs.DisableTreeSubstitution = true
			}
		}
	}
}

// Orchestrator assembles the module ensemble for a scheme. Each call
// builds fresh module instances, so query caches never leak between
// configurations.
func (s *System) Orchestrator(scheme Scheme, opts ...OrchOption) *core.Orchestrator {
	mods := analysis.DefaultModules(s.Prog)
	groups := analysis.Groups(mods)
	if scheme != SchemeCAF {
		mods = append(mods, spec.DefaultModules(s.Profiles)...)
		for k, v := range spec.Groups() {
			groups[k] = v
		}
	}
	cfgn := core.Config{
		Modules: mods,
		Groups:  groups,
		Join:    core.JoinCheapest,
		Bailout: core.BailDefiniteAffordable,
		Routing: core.RouteCollaborative,
	}
	if scheme == SchemeConfluence {
		cfgn.Routing = core.RouteIsolated
	}
	for _, o := range opts {
		o(&cfgn)
	}
	// A shared cache brings its own interner (handle identity must align
	// with the entries it stores); otherwise all of this system's
	// orchestrators share one session table.
	if cfgn.Interner == nil && cfgn.Shared == nil {
		cfgn.Interner = s.Interner()
	}
	return core.NewOrchestrator(cfgn)
}

// LearnModuleOrder profiles this system's hot loops under the scheme's
// fixed module schedule and proposes a cheaper consult order (high
// settle-rate modules first, within their kind block — see
// core.OrderProfile). The candidate is adopted only if a verification
// re-run over the same loops is answer-identical to the fixed schedule —
// per query the same lattice result, no-dependence verdict, and validation
// cost (pdg.EqualAnswers) — with strictly fewer module evaluations;
// otherwise (nil, false) is returned and the fixed schedule stands.
//
// The returned order is plain data: pass it to later orchestrators of the
// SAME scheme and options via WithModuleOrder, including through
// OrchestratorFactory and ParallelClient. Learning costs two serial
// analyses of the hot loops; a session pays it once.
func (s *System) LearnModuleOrder(scheme Scheme, opts ...OrchOption) ([]string, bool) {
	client := s.Client()
	loops := s.HotLoops()
	mint := func(order []string, tr core.Tracer) *core.Orchestrator {
		o := append(append([]OrchOption(nil), opts...), WithModuleOrder(order))
		if tr != nil {
			o = append(o, WithTracer(tr))
		}
		return s.Orchestrator(scheme, o...)
	}
	return pdg.LearnOrder(client, loops, mint)
}

// OrchestratorFactory returns a mint function suitable for
// pdg.ParallelClient: every call builds an independent Orchestrator (fresh
// module instances included) for the same scheme and options. Options that
// capture stateful values — WithExtraModules with a module instance,
// notably — would share that state across all minted orchestrators and
// must not be used with a factory unless the captured value is safe for
// concurrent use (WithSharedCache is; custom modules usually are not).
func (s *System) OrchestratorFactory(scheme Scheme, opts ...OrchOption) func() *core.Orchestrator {
	return func() *core.Orchestrator { return s.Orchestrator(scheme, opts...) }
}

// ParallelClient returns a PDG client that fans loops out over workers
// goroutines (GOMAXPROCS when workers < 1), each with its own orchestrator
// for the given scheme and options.
func (s *System) ParallelClient(workers int, scheme Scheme, opts ...OrchOption) *pdg.ParallelClient {
	return pdg.NewParallelClient(s.Client(), workers, s.OrchestratorFactory(scheme, opts...))
}
