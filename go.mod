module scaf

go 1.22
