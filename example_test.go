package scaf_test

import (
	"fmt"
	"log"

	"scaf"
	"scaf/internal/core"
	"scaf/internal/ir"
)

// Example reproduces the paper's motivating example (Fig. 1/5/6): the
// cross-iteration data flow from the trailing store of `a` to its read at
// the join is unprovable statically because the rare path bypasses the
// killing store — but SCAF removes it at zero validation cost through
// control-speculation × kill-flow collaboration.
func Example() {
	const program = `
int a;
int b;
int foo(int x) { return x + 1; }
void main() {
    for (int i = 0; i < 2000; i++) {
        if (i > 1000000) { b = b + 7; } else { a = i; }
        b = foo(a);
        a = i * 2;
    }
    print(b);
}`
	sys, err := scaf.Load("motivating", program, scaf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	loop := sys.HotLoops()[0]

	// Locate i2 (the load of a) and i3 (the trailing store of a).
	g := sys.Mod.GlobalNamed("a")
	var i2, i3 *ir.Instr
	sys.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if !loop.ContainsInstr(in) {
			return
		}
		if in.Op == ir.OpLoad && in.Args[0] == ir.Value(g) {
			i2 = in
		}
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(g) && (i3 == nil || in.ID > i3.ID) {
			i3 = in
		}
	})

	for _, scheme := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF} {
		resp := sys.Orchestrator(scheme).ModRef(&core.ModRefQuery{
			I1: i3, I2: i2, Rel: core.Before, Loop: loop,
			DT: sys.Prog.Dom[loop.Fn], PDT: sys.Prog.PostDom[loop.Fn],
		})
		fmt.Printf("%-10s -> %s", scheme, resp.Result)
		if resp.Result == core.NoModRef {
			fmt.Printf(" (validation cost %.0f)", core.MinCost(resp.Options))
		}
		fmt.Println()
	}
	// Output:
	// CAF        -> Mod
	// Confluence -> Mod
	// SCAF       -> NoModRef (validation cost 0)
}
