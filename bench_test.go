package scaf_test

import (
	"sync"
	"testing"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/core"
	"scaf/internal/pdg"
)

// The benchmarks below regenerate each of the paper's experiments under
// the Go benchmark harness; `go test -bench=. -benchmem` reports their
// cost, and the experiment outputs themselves come from cmd/scaf-bench.

var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

func loadSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = bench.LoadSuite()
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkFig8 measures the full three-scheme PDG analysis per
// benchmark program — the work behind one bar of Fig. 8.
func BenchmarkFig8(b *testing.B) {
	s := loadSuite(b)
	for _, bm := range s.Benchmarks {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.Analyze(bm)
			}
		})
	}
}

// BenchmarkFig9 measures the scatter computation over pre-analyzed
// results (Fig. 9 is a re-projection of Fig. 8's query set).
func BenchmarkFig9(b *testing.B) {
	s := loadSuite(b)
	as := bench.AnalyzeSuite(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Fig9(as)
	}
}

// BenchmarkTable2 measures the collaboration-coverage computation.
func BenchmarkTable2(b *testing.B) {
	s := loadSuite(b)
	as := bench.AnalyzeSuite(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Table2(as)
	}
}

// BenchmarkFig10 measures raw query latency per configuration — the
// quantity Fig. 10 plots. Each iteration resolves one PDG query.
func BenchmarkFig10(b *testing.B) {
	s := loadSuite(b)
	target := s.Benchmarks[7] // 183.equake: pointer-parameter kernels
	loop := target.Hot[0]
	dt := target.Sys.Prog.Dom[loop.Fn]
	pdt := target.Sys.Prog.PostDom[loop.Fn]
	ops := loop.MemOps()

	configs := []struct {
		name   string
		scheme scaf.Scheme
		opts   []scaf.OrchOption
	}{
		{"CAF", scaf.SchemeCAF, nil},
		{"SCAF-noDesired", scaf.SchemeSCAF, []scaf.OrchOption{scaf.WithoutDesiredResult()}},
		{"SCAF", scaf.SchemeSCAF, nil},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			o := target.Sys.Orchestrator(cfg.scheme, cfg.opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				i1 := ops[i%len(ops)]
				i2 := ops[(i/len(ops)+i)%len(ops)]
				o.ModRef(&core.ModRefQuery{
					I1: i1, I2: i2, Rel: core.Before, Loop: loop, DT: dt, PDT: pdt,
				})
			}
		})
	}
}

// BenchmarkFig7ValidationCost measures the real-machine analogue of
// Fig. 7's asymmetry: a residue/heap check is a couple of ALU ops, a
// shadow-memory check is a map lookup plus update.
func BenchmarkFig7ValidationCost(b *testing.B) {
	b.Run("cheap-mask-check", func(b *testing.B) {
		addr := uint64(0x10040)
		miss := 0
		for i := 0; i < b.N; i++ {
			if addr&15 != 0 {
				miss++
			}
			addr += 16
		}
		_ = miss
	})
	b.Run("shadow-memory-check", func(b *testing.B) {
		shadow := make(map[uint64]uint32, 1024)
		addr := uint64(0x10040)
		miss := 0
		for i := 0; i < b.N; i++ {
			meta := shadow[addr>>3]
			if meta&3 == 3 {
				miss++
			}
			shadow[addr>>3] = meta | 1
			addr += 8
			if addr > 0x90040 {
				addr = 0x10040
			}
		}
		_ = miss
	})
}

// BenchmarkAblationRouting contrasts collaborative and isolated premise
// routing on identical query sets (the design choice DESIGN.md calls the
// collaboration switch).
func BenchmarkAblationRouting(b *testing.B) {
	s := loadSuite(b)
	target := s.Benchmarks[9] // 456.hmmer: heavy premise traffic
	client := target.Sys.Client()
	for _, cfg := range []struct {
		name   string
		scheme scaf.Scheme
	}{
		{"collaborative", scaf.SchemeSCAF},
		{"isolated", scaf.SchemeConfluence},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := target.Sys.Orchestrator(cfg.scheme)
				var res *pdg.LoopResult
				for _, l := range target.Hot {
					res = client.AnalyzeLoop(o, l)
				}
				_ = res
			}
		})
	}
}

// BenchmarkProfiling measures the full train-input profiling run of one
// benchmark (interpreter + all six profilers).
func BenchmarkProfiling(b *testing.B) {
	src := bench.Sources["129.compress"]
	for i := 0; i < b.N; i++ {
		if _, err := scaf.Load("129.compress", src, scaf.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures front-end + SSA construction alone.
func BenchmarkCompile(b *testing.B) {
	src := bench.Sources["525.x264"]
	for i := 0; i < b.N; i++ {
		if _, err := scaf.Compile("525.x264", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlan measures the global validation planner (§3.4) over a
// JoinAll PDG of one benchmark's hot loops.
func BenchmarkPlan(b *testing.B) {
	s := loadSuite(b)
	target := s.Benchmarks[7] // 183.equake
	client := target.Sys.Client()
	o := target.Sys.Orchestrator(scaf.SchemeSCAF,
		scaf.WithJoin(core.JoinAll), scaf.WithBailout(core.BailExhaustive))
	var queries []pdg.Query
	for _, l := range target.Hot {
		res := client.AnalyzeLoop(o, l)
		for _, q := range res.Queries {
			if q.Rel == core.Before {
				queries = append(queries, q)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pdg.BuildPlan(queries)
	}
}
