package scaf

import (
	"testing"

	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/spec"
)

// motivatingExample is Figure 1/5 of the paper: a rarely-taken branch
// skips the store i1 that would otherwise kill the cross-iteration data
// flow from i3 to i2.
const motivatingExample = `
int a;
int b;

int foo(int x) { return x + 1; }

void main() {
    for (int i = 0; i < 2000; i++) {
        if (i > 1000000) {     // "rare": never taken during profiling
            b = b + 7;         // no writes to a
        } else {
            a = i;             // i1
        }
        b = foo(a);            // i2 reads a
        a = i * 2;             // i3 writes a
    }
    print(b);
}
`

// findAccesses locates i2 (the load of a at the join) and i3 (the store
// of a at the end of the iteration).
func findMotivating(t *testing.T, s *System) (i2, i3 *ir.Instr) {
	t.Helper()
	g := s.Mod.GlobalNamed("a")
	main := s.Mod.FuncNamed("main")
	loop := s.HotLoops()
	if len(loop) != 1 {
		t.Fatalf("hot loops = %d, want 1", len(loop))
	}
	var stores []*ir.Instr
	main.Instrs(func(in *ir.Instr) {
		if !loop[0].ContainsInstr(in) {
			return
		}
		switch in.Op {
		case ir.OpLoad:
			if in.Args[0] == ir.Value(g) {
				i2 = in
			}
		case ir.OpStore:
			if in.Args[1] == ir.Value(g) {
				stores = append(stores, in)
			}
		}
	})
	if i2 == nil || len(stores) != 2 {
		t.Fatalf("accesses not found (stores=%d):\n%s", len(stores), ir.FormatFunc(main))
	}
	// i3 is the store after the load (larger instruction index).
	i3 = stores[0]
	if stores[1].ID > i3.ID {
		i3 = stores[1]
	}
	return i2, i3
}

func loadMotivating(t *testing.T) *System {
	t.Helper()
	s, err := Load("motivating", motivatingExample, Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return s
}

// TestMotivatingExample reproduces the paper's Fig. 5/6 walk-through:
// the cross-iteration flow i3→i2 is not disprovable by memory analysis
// alone nor by composition by confluence, but SCAF resolves it through
// control-speculation × kill-flow collaboration at zero validation cost.
func TestMotivatingExample(t *testing.T) {
	s := loadMotivating(t)
	i2, i3 := findMotivating(t, s)
	loop := s.HotLoops()[0]
	q := func() *core.ModRefQuery {
		return &core.ModRefQuery{
			I1: i3, I2: i2, Rel: core.Before, Loop: loop,
			DT: s.Prog.Dom[loop.Fn], PDT: s.Prog.PostDom[loop.Fn],
		}
	}

	caf := s.Orchestrator(SchemeCAF).ModRef(q())
	if caf.Result == core.NoModRef {
		t.Fatalf("CAF must NOT disprove the dependence statically, got %s", caf.Result)
	}

	conf := s.Orchestrator(SchemeConfluence).ModRef(q())
	if conf.Result == core.NoModRef {
		t.Fatalf("confluence must NOT disprove the dependence, got %s", conf.Result)
	}

	scafResp := s.Orchestrator(SchemeSCAF).ModRef(q())
	if scafResp.Result != core.NoModRef {
		t.Fatalf("SCAF should disprove the dependence, got %s", scafResp.Result)
	}
	// The answer must be predicated on a control-speculation assertion at
	// (practically) zero validation cost, and credit both collaborating
	// modules.
	if core.MinCost(scafResp.Options) != core.CostCtrlCheck {
		t.Errorf("cost = %g, want control-speculation cost %g",
			core.MinCost(scafResp.Options), core.CostCtrlCheck)
	}
	foundCtrl := false
	for _, o := range scafResp.Options {
		for _, a := range o.Asserts {
			if a.Module == spec.NameControlSpec && a.Kind == "never-taken-edges" {
				foundCtrl = true
				if len(a.Points) == 0 {
					t.Error("control assertion has no transform points")
				}
			}
		}
	}
	if !foundCtrl {
		t.Errorf("no control-speculation assertion in options: %v", scafResp.Options)
	}
	wantContrib := map[string]bool{"control-spec": false, "kill-flow": false}
	for _, c := range scafResp.Contribs {
		if _, ok := wantContrib[c]; ok {
			wantContrib[c] = true
		}
	}
	for mod, seen := range wantContrib {
		if !seen {
			t.Errorf("contributor %s missing from %v", mod, scafResp.Contribs)
		}
	}
}

// TestMotivatingPDG checks the client-level metric ordering on the
// motivating example: SCAF ≥ confluence ≥ CAF.
func TestMotivatingPDG(t *testing.T) {
	s := loadMotivating(t)
	loop := s.HotLoops()[0]
	client := s.Client()

	caf := client.AnalyzeLoop(s.Orchestrator(SchemeCAF), loop).NoDepPct()
	conf := client.AnalyzeLoop(s.Orchestrator(SchemeConfluence), loop).NoDepPct()
	sc := client.AnalyzeLoop(s.Orchestrator(SchemeSCAF), loop).NoDepPct()

	if conf < caf {
		t.Errorf("confluence (%.1f) below CAF (%.1f)", conf, caf)
	}
	if sc <= conf {
		t.Errorf("SCAF (%.1f) should beat confluence (%.1f) on the motivating example", sc, conf)
	}
}

// TestMemSpecBaseline: the dependence in the motivating example never
// manifests during profiling (the rare branch is never taken), so memory
// speculation also removes it — at shadow-memory cost.
func TestMemSpecBaseline(t *testing.T) {
	s := loadMotivating(t)
	i2, i3 := findMotivating(t, s)
	loop := s.HotLoops()[0]
	ms := s.MemSpec()
	if !ms.NoDep(loop, i3, i2, core.Before) {
		t.Error("memory speculation should cover the non-observed dependence")
	}
	a := ms.Assertion(i3, i2)
	if a.Cost < core.CostMemSpecCheck*2000 {
		t.Errorf("memory speculation cost %g suspiciously low", a.Cost)
	}
	// A dependence that DID manifest must not be speculated away:
	// i3 (store a, iter i) → i2 (load a, iter i+1) never manifests here
	// because i1 kills it every iteration; but the intra-iteration flow
	// i1→i2 does manifest.
	var i1 *ir.Instr
	g := s.Mod.GlobalNamed("a")
	s.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(g) && in != i3 {
			i1 = in
		}
	})
	if i1 == nil {
		t.Fatal("i1 not found")
	}
	if ms.NoDep(loop, i1, i2, core.Same) {
		t.Error("manifested intra-iteration flow i1→i2 must be observed")
	}
}
