package scaf

import (
	"scaf/internal/core"
	"scaf/internal/pdg"
	"scaf/internal/recovery"
	"scaf/internal/runtime"
)

// ExecutePlan closes the loop from analysis to execution: it analyzes
// every hot loop under the scheme (JoinAll + exhaustive search, so the
// validation planner sees real alternatives), builds the §3.4 assertion
// plans, and runs the program with internal/runtime — loops the plans
// mark DOALL execute their iterations chunked across workers against
// journaled memory views, validated at commit time. A misspeculation
// quarantines the disproved assertions, invalidates predicated shared-
// cache entries, re-plans through the quarantine filter, and re-executes
// the losing range serially, so the reported output is always equal to a
// serial interpretation.
//
// cfg's Quarantine, Cache, and Replan are filled in when nil (fresh
// quarantine, fresh shared cache with the quarantine as revoker, and a
// re-analysis of the hot loops under the same scheme and options).
// Additional orchestrator options (chaos injection, ablations) apply to
// both the initial analysis and every re-plan.
func (s *System) ExecutePlan(scheme Scheme, cfg runtime.Config, opts ...OrchOption) (*runtime.Report, error) {
	q := cfg.Quarantine
	if q == nil {
		q = recovery.New()
		cfg.Quarantine = q
	}
	sc := cfg.Cache
	if sc == nil {
		sc = core.NewSharedCache()
		cfg.Cache = sc
	}
	sc.SetRevoker(q)
	allOpts := append([]OrchOption{
		WithJoin(core.JoinAll),
		WithBailout(core.BailExhaustive),
		WithSharedCache(sc),
		WithModuleWrapper(recovery.Wrapper(q)),
	}, opts...)
	analyze := func() []runtime.LoopPlan {
		o := s.Orchestrator(scheme, allOpts...)
		client := s.Client()
		var plans []runtime.LoopPlan
		for _, l := range s.HotLoops() {
			res := client.ResolveLoop(o, l)
			plans = append(plans, runtime.LoopPlan{Loop: l, Res: res, Plan: pdg.BuildPlan(res.Queries)})
		}
		return plans
	}
	if cfg.Replan == nil {
		cfg.Replan = analyze
	}
	return runtime.Execute(s.Prog, analyze(), cfg)
}
