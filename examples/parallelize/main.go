// The parallelize example is the kind of client the paper motivates
// (§3.4, "SCAF facilitates planning"): a DOALL parallelization planner.
//
// For each hot loop it asks SCAF for ALL the ways each cross-iteration
// dependence can be removed (JoinAll + exhaustive search), then performs
// global reasoning with pdg.BuildPlan: one cheap assertion (say, a
// read-only heap separation or a never-taken branch) often discharges
// many dependences at once, so the planner optimizes the cost of the
// assertion UNION rather than each query locally — exactly the judicious
// speculation the paper argues for. The raw memory-speculation price for
// the same loop is shown for contrast.
package main

import (
	"fmt"
	"log"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/core"
	"scaf/internal/pdg"
)

func main() {
	const target = "183.equake"
	sys, err := scaf.Load(target, bench.Sources[target], scaf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	client := sys.Client()
	// Global reasoning needs every option, not just the locally cheapest.
	o := sys.Orchestrator(scaf.SchemeSCAF,
		scaf.WithJoin(core.JoinAll),
		scaf.WithBailout(core.BailExhaustive),
	)
	ms := sys.MemSpec()

	for _, loop := range sys.HotLoops() {
		res := client.ResolveLoop(o, loop)

		// DOALL needs every cross-iteration dependence gone.
		var crossQueries []pdg.Query
		manifested := 0
		var memSpecCost float64
		memSpecNeeded := 0
		for _, q := range res.Queries {
			if q.Rel != core.Before {
				continue
			}
			crossQueries = append(crossQueries, q)
			if !q.NoDep {
				if ms.NoDep(loop, q.I1, q.I2, q.Rel) {
					memSpecNeeded++
					memSpecCost += ms.Assertion(q.I1, q.I2).Cost
				} else {
					manifested++
				}
			}
		}

		fmt.Printf("loop %s (%.0f%% of execution, %d cross-iteration queries):\n",
			loop.Name(), 100*sys.Profiles.LoopWeightFrac(loop), len(crossQueries))
		if manifested > 0 {
			fmt.Printf("  NOT parallelizable: %d cross-iteration dependences manifest at runtime\n\n",
				manifested)
			continue
		}

		plan := pdg.BuildPlan(crossQueries)
		fmt.Printf("  %d dependences disproven for free, %d removed speculatively, %d dropped\n",
			plan.Free, plan.Covered, plan.Dropped)
		fmt.Printf("  validation plan: %d assertions, total cost %.0f\n",
			len(plan.Assertions), plan.TotalCost)
		for _, a := range plan.Assertions {
			fmt.Printf("    - %s\n", a)
		}
		if memSpecNeeded > 0 {
			fmt.Printf("  %d dependences would still need memory speculation (cost %.0f)\n",
				memSpecNeeded, memSpecCost)
		}
		// Enforce the plan at runtime (the validation half of §4.2.1): on
		// the training input every assertion must hold.
		if len(plan.Assertions) > 0 {
			rep, err := sys.Validate(plan.Assertions)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  runtime validation: %d checks, %d misspeculations\n",
				rep.Checks, len(rep.Violations))
		}
		switch {
		case plan.Dropped == 0 && memSpecNeeded == 0:
			fmt.Println("  => DOALL-ready with cheap validation only")
		case plan.Dropped == 0:
			fmt.Printf("  => DOALL possible; cheap checks cover all but %d dependences\n", memSpecNeeded)
		default:
			fmt.Println("  => plan incomplete (conflicting assertions)")
		}
		fmt.Println()
	}
}
