// The quickstart example walks through the paper's motivating example
// (Fig. 1/5/6): a rarely-taken branch hides the store that would kill a
// cross-iteration data flow. Memory analysis alone cannot disprove the
// dependence; composition by confluence cannot either; SCAF resolves it
// through control-speculation × kill-flow collaboration at zero
// validation cost.
package main

import (
	"fmt"
	"log"

	"scaf"
	"scaf/internal/core"
	"scaf/internal/ir"
)

const program = `
int a;
int b;

int foo(int x) { return x + 1; }

void main() {
    for (int i = 0; i < 2000; i++) {
        if (i > 1000000) {     // "rare": never taken during profiling
            b = b + 7;         // no writes to a
        } else {
            a = i;             // i1
        }
        b = foo(a);            // i2 reads a
        a = i * 2;             // i3 writes a
    }
    print(b);
}
`

func main() {
	sys, err := scaf.Load("motivating", program, scaf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d dynamic instructions; output %v\n\n",
		sys.Profiles.Steps, sys.Profiles.Output)

	loop := sys.HotLoops()[0]
	fmt.Printf("hot loop: %s (%.0f%% of execution)\n\n",
		loop.Name(), 100*sys.Profiles.LoopWeightFrac(loop))

	// Locate i2 (the load of `a` at the join) and i3 (the trailing store).
	g := sys.Mod.GlobalNamed("a")
	var i2, i3 *ir.Instr
	sys.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if !loop.ContainsInstr(in) {
			return
		}
		if in.Op == ir.OpLoad && in.Args[0] == ir.Value(g) {
			i2 = in
		}
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(g) {
			if i3 == nil || in.ID > i3.ID {
				i3 = in
			}
		}
	})
	fmt.Printf("query: may %s (i3) reach %s (i2) across iterations?\n\n",
		ir.FormatInstr(i3), ir.FormatInstr(i2))

	query := func() *core.ModRefQuery {
		return &core.ModRefQuery{
			I1: i3, I2: i2, Rel: core.Before, Loop: loop,
			DT: sys.Prog.Dom[loop.Fn], PDT: sys.Prog.PostDom[loop.Fn],
		}
	}
	for _, scheme := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF} {
		resp := sys.Orchestrator(scheme).ModRef(query())
		fmt.Printf("%-11s → %s", scheme, resp.Result)
		if resp.Result == core.NoModRef {
			fmt.Printf("  (cost %.0f, via %v)", core.MinCost(resp.Options), resp.Contribs)
			for _, o := range resp.Options {
				for _, a := range o.Asserts {
					fmt.Printf("\n             assertion: %s", a)
				}
			}
		}
		fmt.Println()
	}

	fmt.Println("\nThe kill-flow module proves the kill only under the speculative")
	fmt.Println("control flow that the control-speculation module supplies in a")
	fmt.Println("premise query — neither module can resolve the query alone.")
}
