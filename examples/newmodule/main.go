// The newmodule example shows the paper's extension story (§4.2.1): how a
// new speculation module is written and dropped into the ensemble. The
// module below implements a toy "bounds speculation": the profiler showed
// an index-computing load always in [0, N), so accesses through it stay
// inside one array — here distilled to asserting that two specific
// globals' footprints never alias with a one-compare validation.
//
// The point is the shape: implement core.Module, return speculative
// responses with assertions (module id, transform points, cost, conflict
// points), and register via scaf.WithExtraModules. The orchestrator,
// premise routing, join policies, and clients all work unchanged.
package main

import (
	"fmt"
	"log"

	"scaf"
	"scaf/internal/core"
	"scaf/internal/ir"
)

// boundsSpec is a user-provided speculation module.
type boundsSpec struct {
	core.BaseModule
	a, b *ir.Global // globals asserted disjoint at runtime
}

func (m *boundsSpec) Name() string          { return "bounds-spec" }
func (m *boundsSpec) Kind() core.ModuleKind { return core.Speculation }

func (m *boundsSpec) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	if q.Desired == core.WantMustAlias {
		return core.MayAliasResponse() // desired-result bail-out (§3.2.2)
	}
	d1 := core.Decompose(q.L1.Ptr)
	d2 := core.Decompose(q.L2.Ptr)
	hit := func(x, y ir.Value) bool { return x == ir.Value(m.a) && y == ir.Value(m.b) }
	if hit(d1.Base, d2.Base) || hit(d2.Base, d1.Base) {
		return core.AliasSpec(core.NoAlias, m.Name(), core.Assertion{
			Module: m.Name(),
			Kind:   "bounds-check",
			Points: []core.Point{{G: m.a}, {G: m.b}},
			Cost:   1, // one compare at loop entry
		})
	}
	return core.MayAliasResponse()
}

const program = `
int xs[64];
int ys[64];
void main() {
    for (int i = 0; i < 500; i++) {
        xs[i % 64] = i;
        ys[i % 64] = xs[i % 64] * 2;
    }
    print(ys[3]);
}
`

func main() {
	sys, err := scaf.Load("custom", program, scaf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	custom := &boundsSpec{
		a: sys.Mod.GlobalNamed("xs"),
		b: sys.Mod.GlobalNamed("ys"),
	}

	loop := sys.HotLoops()[0]
	q := &core.AliasQuery{
		L1:   core.MemLoc{Ptr: custom.a, Size: 8},
		L2:   core.MemLoc{Ptr: custom.b, Size: 8},
		Rel:  core.Same,
		Loop: loop,
		DT:   sys.Prog.Dom[loop.Fn],
		PDT:  sys.Prog.PostDom[loop.Fn],
	}

	// Without the custom module the ensemble already proves this case
	// statically; to showcase the extension we query the custom module in
	// a minimal ensemble of one.
	solo := core.NewOrchestrator(core.Config{Modules: []core.Module{custom}})
	resp := solo.Alias(q)
	fmt.Printf("custom module alone: %s via %v\n", resp.Result, resp.Contribs)
	for _, o := range resp.Options {
		for _, a := range o.Asserts {
			fmt.Printf("  assertion: %s\n", a)
		}
	}

	// And registered alongside the full SCAF ensemble:
	full := sys.Orchestrator(scaf.SchemeSCAF, scaf.WithExtraModules(custom))
	resp = full.Alias(q)
	fmt.Printf("full ensemble:       %s via %v (free answers win: %v)\n",
		resp.Result, resp.Contribs, core.HasFree(resp.Options))
}
