GO ?= go

.PHONY: all build vet test race bench clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrent paths: the parallel PDG client, the shared
# memo cache, and their equivalence/stress suites.
race:
	$(GO) test -race ./internal/pdg/... ./internal/core/...

# Wall-clock comparison of serial vs parallel suite analysis. Needs
# GOMAXPROCS >= 4 to show a speedup.
bench:
	$(GO) test ./internal/bench/ -run '^$$' -bench 'BenchmarkSuiteSerial|BenchmarkSuiteParallel' -benchtime 3x

clean:
	$(GO) clean ./...
