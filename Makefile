GO ?= go

.PHONY: all build vet test race bench bench-json clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrent paths: the parallel PDG client, the shared
# memo cache, and their equivalence/stress suites.
race:
	$(GO) test -race ./internal/pdg/... ./internal/core/...

# Wall-clock comparison of serial vs parallel suite analysis. Needs
# GOMAXPROCS >= 4 to show a speedup.
bench:
	$(GO) test ./internal/bench/ -run '^$$' -bench 'BenchmarkSuiteSerial|BenchmarkSuiteParallel' -benchtime 3x

# Machine-readable per-benchmark report plus one traced SCAF analysis.
# The trace run doubles as a smoke test: scaf-bench exits non-zero if the
# JSONL event totals do not reconcile with the orchestration counters.
BENCH_JSON_ARGS ?= -bench 181.mcf
bench-json:
	$(GO) run ./cmd/scaf-bench $(BENCH_JSON_ARGS) -fig 8 \
		-json BENCH.json -trace trace.jsonl -trace-dot trace.dot

clean:
	$(GO) clean ./...
