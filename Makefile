GO ?= go

.PHONY: all build vet test race chaos runtime fleet elastic loadgen persist bench bench-json bench-baseline bench-check bench-mem oracle clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrent paths: the parallel PDG client, the shared
# memo cache, and their equivalence/stress suites.
race:
	$(GO) test -race ./internal/pdg/... ./internal/core/...

# Misspeculation-recovery fault-injection suite under the race detector:
# chaos lies/stalls/panics against live server sessions with concurrent
# query/analyze/observe traffic, the observe-equivalence and panic-
# isolation tests, the quarantine/invalidation stress tests, and the
# recovery package's own suite.
chaos:
	$(GO) test -race -count=1 ./internal/recovery/...
	$(GO) test -race -count=1 ./internal/core/ -run 'Quarantine|Invalidate|Revok'
	$(GO) test -race -count=1 -v ./internal/server/ -run 'TestObserve|TestModulePanic|TestHandlerPanic|TestChaos|TestNewHTTPServer'

# Speculative-parallel runtime suite under the race detector: chunked
# DOALL execution against journaled memory views, commit-order
# validation, the abort-guard regression test (disabled commit guard
# must corrupt results), and the 8-worker chaos stress tests that force
# misspeculation and require byte-equal convergence to serial.
runtime:
	$(GO) test -race -count=1 ./internal/runtime/...

# Fleet-mode gate under the race detector: the distributed cache tier's
# own suite, the server's fleet tests (cross-instance remote hits,
# fleet-wide quarantine invalidation with the guaranteed-miss proof), and
# the router suite (broadcast consensus, sharded-read byte-identity vs a
# single cold instance, backend loss + journal-replay rejoin) — then a
# fleet byte-identity oracle sweep: generated programs served through
# router + 2 peer backends must byte-equal a single instance, serially
# and under concurrent fire.
fleet:
	$(GO) test -race -count=1 ./internal/fleet/...
	$(GO) test -race -count=1 -v ./internal/server/ -run 'TestFleet|TestRouter'
	$(GO) run ./cmd/scaf-oracle -seeds 25 -start 7000 -fast -fleet

# Elasticity gate under the race detector: live membership change. The
# fleet tier's own suite (live peer add/remove, fail-open peer timeouts,
# ring bounded-movement property), the membership chaos suite (joiner
# killed mid-stream rolls back, old owner killed mid-drain degrades to
# 503s, double-join and leave-during-join are refused, dead-member leave
# never wedges, byte-identity and durable membership after a join), the
# prober-backoff test, the loadgen membership schedule (live join/leave
# mid-saturation must not change the deterministic digest) — then a
# 25-seed live-membership oracle sweep: join and leave under concurrent
# fire, every answer byte-compared against the static fleet, with the
# joiner required to serve warm hits from its streamed segments.
elastic:
	$(GO) test -race -count=1 ./internal/fleet/...
	$(GO) test -race -count=1 -v ./internal/server/ -run 'TestElastic|TestRouterProbeBackoff'
	$(GO) test -race -count=1 ./internal/loadgen/ -run 'TestSaturationMembership'
	$(GO) run ./cmd/scaf-oracle -seeds 25 -start 7000 -fast -elastic

# Loadgen smoke: the generator's own suite, then the CLI twice with one
# seed against fresh in-process servers — the deterministic sections
# (request mix, schedule digest, order-independent answer digest) must be
# byte-identical across runs and match the pinned literals (same pins as
# TestLoadgenDeterministicCounters) — then the 1/2/4-instance saturation
# sweep, which exits non-zero if any fleet size serves a deterministic
# section different from single-instance.
LOADGEN_ARGS ?= -rate 1500 -requests 80 -seed 42 -query-frac 0.6 -deadline-frac 0.15
LOADGEN_PIN  ?= requests=80 queries=46 analyzes=34 deadlined=13 samples=67
loadgen:
	$(GO) test -count=1 ./internal/loadgen/...
	$(GO) run ./cmd/scaf-loadgen $(LOADGEN_ARGS) -json LOADGEN.1.json | grep '^deterministic:' > LOADGEN.1.txt
	$(GO) run ./cmd/scaf-loadgen $(LOADGEN_ARGS) -json LOADGEN.2.json | grep '^deterministic:' > LOADGEN.2.txt
	diff LOADGEN.1.txt LOADGEN.2.txt
	grep -q '$(LOADGEN_PIN)' LOADGEN.1.txt || { \
		echo "loadgen: deterministic counters drifted from the pin:"; cat LOADGEN.1.txt; exit 1; }
	$(GO) run ./cmd/scaf-loadgen -saturate -sizes 1,2,4 $(LOADGEN_ARGS) -json LOADGEN.saturation.json

# Persistence gate under the race detector: the snapshot codec's own
# suite (prefix property, inner checksums, revoked-journal semantics,
# snapshot-during-drain stress), the server warm-restart suite (byte-
# identical warm boots, a restart straddling an /observe quarantine with
# the physical-miss proof, journal-blocked resurrection after a crash,
# idempotent shutdown, periodic snapshots, router journal persistence),
# the tier Close regressions — then a 25-seed warm-restart oracle sweep
# and a 30s corruption-fuzz smoke over the committed corpus.
persist:
	$(GO) test -race -count=1 ./internal/persist/...
	$(GO) test -race -count=1 -v ./internal/server/ -run 'TestServerWarmRestart|TestServerRestartStraddling|TestRevokedJournal|TestServerShutdownIdempotent|TestServerPeriodicSnapshot|TestRouterPersist|TestRouterCloseConcurrent'
	$(GO) test -race -count=1 ./internal/fleet/ -run 'TestTierClose'
	$(GO) run ./cmd/scaf-oracle -seeds 25 -start 7000 -fast -persist
	$(GO) test ./internal/persist/ -run '^$$' -fuzz '^FuzzSnapshotCorruption$$' -fuzztime 30s

# Wall-clock comparison of serial vs parallel suite analysis. Needs
# GOMAXPROCS >= 4 to show a speedup.
bench:
	$(GO) test ./internal/bench/ -run '^$$' -bench 'BenchmarkSuiteSerial|BenchmarkSuiteParallel' -benchtime 3x

# Machine-readable per-benchmark report plus one traced SCAF analysis.
# The trace run doubles as a smoke test: scaf-bench exits non-zero if the
# JSONL event totals do not reconcile with the orchestration counters.
BENCH_JSON_ARGS ?= -bench 181.mcf
bench-json:
	$(GO) run ./cmd/scaf-bench $(BENCH_JSON_ARGS) -fig 8 \
		-json BENCH.json -trace trace.jsonl -trace-dot trace.dot

# Bench-regression gate. The committed baseline pins the answer
# distribution (%NoDep, query counts) and the deterministic p50 per-query
# work (module evals — machine-independent, so the gate is stable on any
# CI host; the baseline runs serially to keep sample collection exact).
# bench-check fails on any answer drift or a >20% p50 work regression.
# -execute adds the speculative-runtime pass: each gate benchmark is run
# under its SCAF plans and the deterministic commit/abort counters are
# pinned exactly (183.equake is in the set because it actually
# speculates — 1 DOALL loop — so those counters are non-vacuous).
BENCH_GATE_ARGS ?= -bench 129.compress,181.mcf,183.equake,462.libquantum -parallel 1 -fig 8 -execute
BENCH_BASELINE  ?= results/bench-baseline.json

# Regeneration flow: after an INTENTIONAL change to answers or query
# work (new module, batching/ordering change, gate-benchmark edit), run
# `make bench-baseline`, eyeball the diff against the old baseline —
# %NoDep and top_queries should only move if the change means them to —
# and commit the regenerated file together with the change that caused
# it. bench-check failing on an unintentional diff is the gate working.
bench-baseline:
	$(GO) run ./cmd/scaf-bench $(BENCH_GATE_ARGS) -json $(BENCH_BASELINE)

bench-check:
	$(GO) run ./cmd/scaf-bench $(BENCH_GATE_ARGS) -json BENCH.fresh.json
	$(GO) run ./cmd/scaf-benchdiff $(BENCH_BASELINE) BENCH.fresh.json

# Allocation gate on the single-query hot path. BenchmarkTopQuery times
# one top-level mod-ref query on a warm orchestrator — the unit the
# serving layer issues millions of times — and its allocs/op are exact
# and machine-independent, so the ceiling below is a hard pin, not a
# tolerance band. Raise it only with a justification in the commit that
# does (seed was 64 allocs/op; interning + pooling brought it to 16).
BENCH_MEM_MAX_ALLOCS ?= 24
bench-mem:
	$(GO) test ./internal/bench/ -run '^$$' -bench '^BenchmarkTopQuery$$' \
		-benchmem -benchtime 2000x | tee BENCH.mem.txt
	@allocs=$$(awk '/^BenchmarkTopQuery[^A-Za-z]/ {print $$(NF-1)}' BENCH.mem.txt); \
	if [ -z "$$allocs" ]; then echo "bench-mem: no BenchmarkTopQuery result"; exit 1; fi; \
	if [ "$$allocs" -gt $(BENCH_MEM_MAX_ALLOCS) ]; then \
		echo "bench-mem: BenchmarkTopQuery allocs/op = $$allocs, above the $(BENCH_MEM_MAX_ALLOCS) ceiling"; exit 1; \
	else \
		echo "bench-mem: BenchmarkTopQuery allocs/op = $$allocs (ceiling $(BENCH_MEM_MAX_ALLOCS))"; \
	fi

# Differential-testing oracle sweep (the CI gate): soundness,
# monotonicity, serial/parallel/shared-cache/server answer drift,
# metamorphic transform stability, and misspeculation-recovery
# equivalence over generated programs. Failures are ddmin-shrunk into
# self-contained reproducers under ORACLE_OUT.
ORACLE_SEEDS ?= 200
ORACLE_START ?= 1
ORACLE_OUT   ?= testdata/repros

oracle:
	$(GO) run ./cmd/scaf-oracle -seeds $(ORACLE_SEEDS) -start $(ORACLE_START) -shrink -out $(ORACLE_OUT)

clean:
	$(GO) clean ./...
